//! The P601-lite machine: cores, scheduler, syscalls, and run outcomes.
//!
//! A [`Machine`] owns guest memory, one or more [`Cpu`] cores, a guest heap
//! [`Allocator`](crate::mem::Allocator), an input tape, and an output
//! stream. One *run* executes a loaded [`Image`](crate::mem::Image) from
//! scratch until every core halts, a core traps, or the instruction budget
//! is exhausted — yielding the paper's four failure-mode observables
//! (correct/incorrect output, crash, hang) via [`RunOutcome`].
//!
//! The paper's methodology requires that "the target system is rebooted
//! between injections to assure a clean state". Two lifecycles implement
//! that contract:
//!
//! * **Cold boot** — build a fresh `Machine` and [`Machine::load`] the
//!   image for every run. Simple, and what the seed experiments did.
//! * **Warm reboot** — [`Machine::snapshot`] the post-`load()` state once,
//!   run, then [`Machine::restore`] before the next run. Restore rolls
//!   back *only the memory pages dirtied by the run* (plus the small
//!   architectural state), so it is orders of magnitude cheaper than
//!   re-zeroing and re-loading a megabyte of guest memory, while being
//!   observably identical to a cold boot (a tested invariant; see the
//!   `fault_injection_properties` suite).
//!
//! # Examples
//!
//! ```
//! use swifi_vm::asm::assemble;
//! use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};
//! use swifi_vm::inspect::Noop;
//!
//! let image = assemble(
//!     "
//!     addi r3, r0, 21
//!     addi r4, r0, 2
//!     mullw r3, r3, r4
//!     sc print_int
//!     addi r3, r0, 0
//!     halt
//!     ",
//! )?;
//! let mut m = Machine::new(MachineConfig::default());
//! m.load(&image);
//! let outcome = m.run(&mut Noop);
//! assert_eq!(outcome, RunOutcome::Completed { exit_code: 0, output: b"42".to_vec() });
//! # Ok::<(), swifi_vm::asm::AsmError>(())
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

use crate::blocks::{BlockCache, BlockCacheStats, Step, Term};
use crate::inspect::{FetchPolicy, Inspector};
use crate::isa::{self, AluOp, CrBit, Instr, Syscall};
use crate::mem::{
    Allocator, DecodeCacheStats, Image, Memory, MemoryDelta, MemorySnapshot, CODE_BASE,
};

/// A hardware-detected error condition; the *crash* failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// The fetched word does not decode to a valid instruction.
    IllegalInstruction {
        /// The offending word.
        word: u32,
    },
    /// Access to the null page or beyond the end of memory.
    Unmapped {
        /// The faulting address.
        addr: u32,
    },
    /// Word access at a non-word-aligned address.
    Misaligned {
        /// The faulting address.
        addr: u32,
    },
    /// `divw`/`divwu`/`remw` with a zero divisor.
    DivideByZero,
    /// The stack pointer (r1) was moved below the core's stack floor,
    /// typically by runaway recursion.
    StackOverflow,
    /// Heap-interface misuse: wild or double `free`.
    HeapFault {
        /// The pointer passed to `free`.
        addr: u32,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::IllegalInstruction { word } => write!(f, "illegal instruction {word:#010x}"),
            Trap::Unmapped { addr } => write!(f, "unmapped address {addr:#010x}"),
            Trap::Misaligned { addr } => write!(f, "misaligned access {addr:#010x}"),
            Trap::DivideByZero => f.write_str("division by zero"),
            Trap::StackOverflow => f.write_str("stack overflow"),
            Trap::HeapFault { addr } => write!(f, "heap fault freeing {addr:#010x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Scheduling state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    WaitingBarrier,
    Halted(i32),
}

/// Architectural state of one core.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers; r1 is the stack pointer by convention.
    pub regs: [u32; 32],
    /// Link register.
    pub lr: u32,
    /// Condition register: eight 4-bit fields (LT, GT, EQ, SO).
    pub cr: u32,
    /// Program counter.
    pub pc: u32,
    stack_floor: u32,
    state: CoreState,
}

impl Cpu {
    fn new(entry: u32, stack_top: u32, stack_floor: u32, core_id: u32) -> Cpu {
        let mut regs = [0u32; 32];
        regs[1] = stack_top;
        regs[3] = core_id;
        Cpu {
            regs,
            lr: 0,
            cr: 0,
            pc: entry,
            stack_floor,
            state: CoreState::Running,
        }
    }

    /// Value of a condition-register bit.
    #[inline]
    pub fn cr_bit(&self, crf: u8, bit: CrBit) -> bool {
        (self.cr >> ((crf as u32 & 7) * 4 + bit.index())) & 1 == 1
    }

    #[inline]
    fn set_cr_field(&mut self, crf: u8, lt: bool, gt: bool, eq: bool) {
        let shift = (crf as u32 & 7) * 4;
        self.cr &= !(0xF << shift);
        let v = (lt as u32) | ((gt as u32) << 1) | ((eq as u32) << 2);
        self.cr |= v << shift;
    }
}

/// Sizing and limits for a [`Machine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Guest memory size in bytes (word-aligned; default 1 MiB).
    pub mem_size: u32,
    /// Number of cores (default 1).
    pub num_cores: usize,
    /// Stack bytes reserved per core at the top of memory (default 64 KiB).
    pub stack_size: u32,
    /// Total retired-instruction budget before the run is declared a hang
    /// (default 50 million).
    pub budget: u64,
    /// Output-stream cap in bytes; exceeding it also counts as a hang
    /// (a dead loop that prints; default 1 MiB).
    pub output_limit: usize,
    /// Instructions per scheduling quantum on multi-core machines
    /// (default 64).
    pub quantum: u32,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem_size: 1 << 20,
            num_cores: 1,
            stack_size: 64 << 10,
            budget: 50_000_000,
            output_limit: 1 << 20,
            quantum: 64,
        }
    }
}

/// The observable result of one program run — the paper's failure modes.
///
/// `Completed` still has to be checked against an output oracle to decide
/// between the *correct* and *incorrect results* failure modes; the machine
/// cannot know what the right answer was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every core halted normally.
    Completed {
        /// Exit code of core 0.
        exit_code: i32,
        /// Everything the program printed.
        output: Vec<u8>,
    },
    /// A core raised a [`Trap`] — the *crash* failure mode.
    Trapped {
        /// The error condition.
        trap: Trap,
        /// Address of the faulting instruction.
        pc: u32,
        /// Which core trapped.
        core: usize,
        /// Output produced before the crash.
        output: Vec<u8>,
    },
    /// The instruction budget or output cap was exhausted — the *hang*
    /// failure mode (the paper's experiment manager killed such runs after
    /// a timeout).
    Hang {
        /// Output produced before the timeout.
        output: Vec<u8>,
    },
}

impl RunOutcome {
    /// The program output regardless of how the run ended.
    pub fn output(&self) -> &[u8] {
        match self {
            RunOutcome::Completed { output, .. }
            | RunOutcome::Trapped { output, .. }
            | RunOutcome::Hang { output } => output,
        }
    }

    /// Whether the run terminated normally (exit code 0 and no trap/hang).
    pub fn is_normal(&self) -> bool {
        matches!(self, RunOutcome::Completed { exit_code: 0, .. })
    }
}

/// Input tape feeding the `read_int` / `read_byte` syscalls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputTape {
    ints: VecDeque<i32>,
    bytes: VecDeque<u8>,
}

impl InputTape {
    /// Empty tape.
    pub fn new() -> InputTape {
        InputTape::default()
    }

    /// Append integers consumed by `read_int`.
    pub fn push_ints<I: IntoIterator<Item = i32>>(&mut self, ints: I) -> &mut InputTape {
        self.ints.extend(ints);
        self
    }

    /// Append raw bytes consumed by `read_byte`.
    pub fn push_bytes<I: IntoIterator<Item = u8>>(&mut self, bytes: I) -> &mut InputTape {
        self.bytes.extend(bytes);
        self
    }

    /// Append a string plus newline to the byte stream.
    pub fn push_line(&mut self, line: &str) -> &mut InputTape {
        self.bytes.extend(line.bytes());
        self.bytes.push_back(b'\n');
        self
    }

    /// Consume the next `read_int` value, mirroring the syscall order.
    pub(crate) fn pop_int(&mut self) -> Option<i32> {
        self.ints.pop_front()
    }

    /// Consume the next `read_byte` value, mirroring the syscall order.
    pub(crate) fn pop_byte(&mut self) -> Option<u8> {
        self.bytes.pop_front()
    }
}

enum Progress {
    Continue,
    StateChange,
    /// A syscall pushed the output stream past the configured cap; the run
    /// ends as a hang. Checked only where output can grow (the syscall
    /// path) so the hot loop does not pay for it per iteration.
    OutputLimit,
    /// The armed fetch breakpoint was reached: the instruction at the
    /// break PC has *not* been fetched or executed, `retired` has not
    /// advanced, and `core.pc` still points at it.
    Breakpoint,
}

/// How a [`Machine::run_inner`] loop ended: a finished run, or a pause at
/// the armed fetch breakpoint.
enum RunControl {
    Done(RunOutcome),
    Break,
}

/// An armed fetch breakpoint: pause the machine the `nth` time `pc` is
/// about to be fetched. Only meaningful through [`Machine::run_to_fetch`].
#[derive(Debug, Clone, Copy)]
struct FetchBreak {
    pc: u32,
    nth: u64,
    /// Arrivals at `pc` observed so far (equals the would-be trigger
    /// occurrence count of an `OpcodeFetch` fault at `pc`).
    seen: u64,
}

/// Result of [`Machine::run_to_fetch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchStop {
    /// The breakpoint PC was about to be fetched for the `nth` time. The
    /// machine is paused exactly *before* that fetch: the instruction has
    /// not executed, no fetch hook has seen it, and `Machine::retired` has
    /// not advanced past the prefix.
    Hit,
    /// The run finished (or hung/trapped) before `pc` was fetched `nth`
    /// times — the outcome is exactly that of an ordinary [`Machine::run`].
    Finished(RunOutcome),
}

/// A sparse capture of a paused run, relative to the base
/// [`MachineSnapshot`]: the memory pages that diverge plus the (small)
/// non-memory state — cores, allocator bookkeeping, the partially consumed
/// input tape, output produced so far, and the retired-instruction count.
///
/// Taken with [`Machine::fork_snapshot`] (typically at a
/// [`Machine::run_to_fetch`] pause) and resumed with
/// [`Machine::restore_fork`]. Decoded-line state is *not* captured: the
/// translation cache persists in the machine and restore invalidates
/// exactly the code words a restore changes, so lines built during the
/// prefix keep serving forked suffixes.
///
/// A fork snapshot may be restored on a *different* machine than it was
/// captured on, provided both were built from the same config and image
/// (byte-identical base snapshots) — how pooled campaign workers share one
/// prefix cache.
#[derive(Debug, Clone)]
pub struct ForkSnapshot {
    mem: MemoryDelta,
    cores: Vec<Cpu>,
    alloc: Allocator,
    input: InputTape,
    output: Vec<u8>,
    retired: u64,
}

impl ForkSnapshot {
    /// Instructions retired by the captured prefix.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Number of memory pages stored in the delta.
    pub fn delta_pages(&self) -> usize {
        self.mem.page_count()
    }

    /// Approximate heap footprint in bytes (for cache bounding).
    pub fn byte_count(&self) -> usize {
        self.mem.byte_count() + self.output.len()
    }
}

/// A point-in-time capture of a loaded [`Machine`]: memory, cores, heap
/// allocator bookkeeping, input tape, and instruction counter.
///
/// Taken with [`Machine::snapshot`] (normally right after
/// [`Machine::load`]) and applied with [`Machine::restore`], which rolls
/// back only the state a run actually touched. The snapshot is tied to the
/// machine it was taken from — restoring it into a machine with a
/// different memory size panics.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    mem: MemorySnapshot,
    cores: Vec<Cpu>,
    alloc: Allocator,
    input: InputTape,
    output: Vec<u8>,
    retired: u64,
}

impl MachineSnapshot {
    /// Size of the snapshotted guest memory in bytes.
    pub fn mem_size(&self) -> u32 {
        self.mem.size()
    }
}

/// A complete P601-lite machine. See the [module docs](self) for an
/// end-to-end example.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    mem: Memory,
    /// Basic-block superinstruction cache — the top tier of the fetch
    /// pipeline (slow / line-cached / block). A sibling of `mem` rather
    /// than part of it so the interpreter's split borrows can hold a
    /// translated block and mutate guest memory at the same time; kept
    /// coherent through `Memory`'s code-write log, drained before every
    /// block dispatch.
    blocks: BlockCache,
    cores: Vec<Cpu>,
    alloc: Allocator,
    input: InputTape,
    output: Vec<u8>,
    retired: u64,
    loaded: bool,
    /// Seed-compatible interpretation: decode every fetched word and call
    /// `on_fetch` unconditionally, never consulting the translation cache.
    /// The reference mode for differential testing and benchmarking.
    reference_interp: bool,
    /// When `true`, the active inspector declared [`FetchPolicy::All`]:
    /// every PC takes the slow fetch path for this run.
    pin_all: bool,
    /// Whether cached runs may dispatch whole translated basic blocks
    /// (default). When `false` they use the per-instruction line-cached
    /// path — an execution-strategy toggle, never a semantic change.
    block_interp: bool,
    /// PCs pinned to the slow path for the current run (the active
    /// inspector's [`FetchPolicy::Pcs`] set); unpinned when the next run
    /// installs its own policy.
    pinned_pcs: Vec<u32>,
    /// Wall-clock watchdog for the current run: when set, [`Machine::run`]
    /// returns [`RunOutcome::Hang`] once the deadline passes — defense in
    /// depth above the instruction budget for runs that are slow rather
    /// than long (e.g. pathological slow-path behaviour under injection).
    deadline: Option<Instant>,
    /// Scheduler rounds between watchdog clock reads (see
    /// [`Machine::set_watchdog_poll`]); only consulted while a deadline
    /// is armed.
    watchdog_poll: u32,
    /// Armed fetch breakpoint for the current [`Machine::run_to_fetch`]
    /// call; always `None` outside it, so ordinary runs pay nothing.
    fetch_break: Option<FetchBreak>,
}

/// Default scheduler rounds between watchdog deadline polls.
pub const DEFAULT_WATCHDOG_POLL: u32 = 64;

impl Machine {
    /// Build a machine per `config` with empty memory and input.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero cores, or stacks
    /// that do not fit in memory) — configuration errors, not guest faults.
    pub fn new(config: MachineConfig) -> Machine {
        assert!(config.num_cores >= 1, "need at least one core");
        let stacks = config.stack_size as u64 * config.num_cores as u64;
        assert!(
            stacks < config.mem_size as u64 / 2,
            "stacks ({stacks} bytes) must fit in half of memory"
        );
        let mem = Memory::new(config.mem_size);
        Machine {
            config,
            mem,
            blocks: BlockCache::default(),
            cores: Vec::new(),
            alloc: Allocator::new(CODE_BASE, CODE_BASE),
            input: InputTape::new(),
            output: Vec::new(),
            retired: 0,
            loaded: false,
            reference_interp: false,
            pin_all: false,
            block_interp: true,
            pinned_pcs: Vec::new(),
            deadline: None,
            watchdog_poll: DEFAULT_WATCHDOG_POLL,
            fetch_break: None,
        }
    }

    /// Load an image: copy code and data into memory, set up the heap
    /// between the static footprint and the stacks, and reset every core to
    /// the entry point.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit below the stack region.
    pub fn load(&mut self, image: &Image) {
        let stacks_base =
            self.config.mem_size - self.config.stack_size * self.config.num_cores as u32;
        assert!(
            image.static_end() <= stacks_base,
            "image static footprint {:#x} collides with stacks at {:#x}",
            image.static_end(),
            stacks_base
        );
        // Bulk-copy the code image as one byte-slice write instead of a
        // per-word `write_u32` loop: one bounds check, one dirty-range
        // mark, one `copy_from_slice`.
        let mut code_bytes = Vec::with_capacity(image.code.len() * 4);
        for &w in &image.code {
            code_bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.mem
            .write_bytes(CODE_BASE, &code_bytes)
            .expect("code fits");
        self.mem
            .write_bytes(image.data_base(), &image.data)
            .expect("data fits");
        // The translation cache covers exactly the code segment; PCs in the
        // data region (or injected jumps into data) fall outside it and
        // execute via the slow fetch→decode path, so self-generated code
        // anywhere else still behaves.
        self.mem.init_decode_cache(image.data_base());
        // The block cache covers the same words; translation is lazy, so a
        // load costs one map reset regardless of code size.
        self.blocks.init(image.code.len());
        self.alloc = Allocator::new(image.static_end(), stacks_base);
        self.cores = (0..self.config.num_cores)
            .map(|i| {
                let top = self.config.mem_size - self.config.stack_size * i as u32;
                Cpu::new(image.entry, top, top - self.config.stack_size, i as u32)
            })
            .collect();
        self.pinned_pcs.clear();
        self.loaded = true;
    }

    /// Capture the current machine state as a [`MachineSnapshot`] and make
    /// it the baseline for subsequent [`Machine::restore`] calls.
    ///
    /// Intended use: call once right after [`Machine::load`] (and any
    /// fault-preparation pokes that should persist across runs), then
    /// `restore` between runs instead of re-building the machine.
    ///
    /// # Panics
    ///
    /// Panics if no image has been loaded — snapshotting an empty machine
    /// is a lifecycle error.
    pub fn snapshot(&mut self) -> MachineSnapshot {
        assert!(self.loaded, "Machine::load must be called before snapshot");
        MachineSnapshot {
            mem: self.mem.snapshot(),
            cores: self.cores.clone(),
            alloc: self.alloc.clone(),
            input: self.input.clone(),
            output: self.output.clone(),
            retired: self.retired,
        }
    }

    /// Warm reboot: roll the machine back to `snap`.
    ///
    /// Memory is restored by copying only the pages dirtied since the
    /// snapshot (or since the previous restore); cores, allocator, input
    /// tape, output stream, and the retired-instruction counter are reset
    /// wholesale (they are tiny). After `restore` the machine is
    /// observably identical to one freshly built and loaded — the
    /// warm-reboot equivalence invariant.
    ///
    /// # Panics
    ///
    /// Panics if `snap` was taken from a machine with a different memory
    /// size (a configuration error, not a guest fault).
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        self.mem.restore_from(&snap.mem);
        self.cores.clone_from(&snap.cores);
        self.alloc.clone_from(&snap.alloc);
        self.input.clone_from(&snap.input);
        self.output.clone_from(&snap.output);
        self.retired = snap.retired;
        self.loaded = true;
    }

    /// Capture the current state as a sparse [`ForkSnapshot`] relative to
    /// the base snapshot (the last [`Machine::snapshot`]).
    ///
    /// Non-destructive: dirty tracking is left untouched, so the paused
    /// run can simply continue afterwards — which is how a prefix capture
    /// doubles as the first injected run of its trigger site.
    ///
    /// # Panics
    ///
    /// Panics if no image has been loaded.
    pub fn fork_snapshot(&self) -> ForkSnapshot {
        assert!(
            self.loaded,
            "Machine::load must be called before fork_snapshot"
        );
        ForkSnapshot {
            mem: self.mem.fork_delta(),
            cores: self.cores.clone(),
            alloc: self.alloc.clone(),
            input: self.input.clone(),
            output: self.output.clone(),
            retired: self.retired,
        }
    }

    /// Resume from a prefix fork: roll the machine to `base` overlaid with
    /// `fork` — the exact state the paused run had when
    /// [`Machine::fork_snapshot`] captured it, including the partially
    /// consumed input tape, output so far, and the retired counter.
    ///
    /// Memory cost is O(pages diverging from base + pages in the fork).
    /// The caller does *not* call [`Machine::set_input`] afterwards: the
    /// fork already contains the mid-run tape.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `fork` was taken from a different-size machine.
    pub fn restore_fork(&mut self, base: &MachineSnapshot, fork: &ForkSnapshot) {
        self.mem.restore_fork_from(&base.mem, &fork.mem);
        self.cores.clone_from(&fork.cores);
        self.alloc.clone_from(&fork.alloc);
        self.input.clone_from(&fork.input);
        self.output.clone_from(&fork.output);
        self.retired = fork.retired;
        self.loaded = true;
    }

    /// Number of cores the machine was configured with.
    pub fn num_cores(&self) -> usize {
        self.config.num_cores
    }

    /// Number of memory pages currently dirty relative to the last
    /// snapshot/restore (diagnostic; a warm restore copies exactly this
    /// many pages).
    pub fn dirty_pages(&self) -> usize {
        self.mem.dirty_pages()
    }

    /// Replace the input tape (before running).
    pub fn set_input(&mut self, input: InputTape) {
        self.input = input;
    }

    /// Direct memory read (for loaders, injectors and tests).
    ///
    /// # Errors
    ///
    /// Propagates the same traps as guest accesses.
    pub fn peek_u32(&self, addr: u32) -> Result<u32, Trap> {
        self.mem.read_u32(addr)
    }

    /// Direct memory write (for loaders, injectors and tests). This is how
    /// Xception's "error inserted in memory at the location of the
    /// instruction" fault model is realised.
    ///
    /// # Errors
    ///
    /// Propagates the same traps as guest accesses.
    pub fn poke_u32(&mut self, addr: u32, value: u32) -> Result<(), Trap> {
        self.mem.write_u32(addr, value)
    }

    /// Architectural state of a core (diagnostics, assertions in tests).
    pub fn core(&self, i: usize) -> &Cpu {
        &self.cores[i]
    }

    /// Total retired instructions so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Heap allocator statistics (for leak assertions in tests).
    pub fn allocator(&self) -> &Allocator {
        &self.alloc
    }

    /// Arm (or disarm, with `None`) the wall-clock watchdog for subsequent
    /// runs: a run still executing past `deadline` returns
    /// [`RunOutcome::Hang`], exactly like instruction-budget exhaustion.
    ///
    /// The deadline is polled between scheduler rounds (every
    /// `cores × quantum` retired instructions at most), so expiry is
    /// detected promptly without a clock read in the hot loop. Callers
    /// re-arm per run; [`Machine::restore`] leaves the setting alone.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Set how many scheduler rounds elapse between watchdog clock reads
    /// while a [`Machine::set_deadline`] deadline is armed (default
    /// [`DEFAULT_WATCHDOG_POLL`]; clamped to at least 1). Lower values
    /// detect wall-clock expiry sooner at the cost of more `Instant::now`
    /// calls; round 0 always polls, so a zero-length deadline still fires
    /// deterministically at any interval.
    pub fn set_watchdog_poll(&mut self, rounds: u32) {
        self.watchdog_poll = rounds.max(1);
    }

    /// The configured watchdog poll interval, in scheduler rounds.
    pub fn watchdog_poll(&self) -> u32 {
        self.watchdog_poll
    }

    /// Switch between the predecoded-cache interpreter (default) and the
    /// seed's decode-every-fetch reference interpreter.
    ///
    /// In reference mode every instruction takes the slow
    /// fetch→`on_fetch`→decode path regardless of the inspector's
    /// [`FetchPolicy`] — byte-for-byte the seed interpreter's behaviour.
    /// Used by differential tests and as the benchmark baseline.
    pub fn set_reference_interp(&mut self, reference: bool) {
        self.reference_interp = reference;
    }

    /// Whether the machine is in reference (decode-every-fetch) mode.
    pub fn reference_interp(&self) -> bool {
        self.reference_interp
    }

    /// Cumulative translation-cache counters since the last
    /// [`Machine::load`] (warm reboots do not reset them).
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        self.mem.decode_cache_stats()
    }

    /// Enable or disable the basic-block interpreter for subsequent cached
    /// runs (enabled by default). Disabling pins execution to the
    /// per-instruction line-cached path; observables are identical either
    /// way (a tested invariant), so this is purely an execution-strategy
    /// switch for benchmarking and for `--no-block-cache` campaigns.
    pub fn set_block_interp(&mut self, enabled: bool) {
        self.block_interp = enabled;
    }

    /// Whether the block interpreter is enabled for cached runs.
    pub fn block_interp(&self) -> bool {
        self.block_interp
    }

    /// Cumulative block-cache counters since the last [`Machine::load`]
    /// (warm reboots do not reset them).
    pub fn block_cache_stats(&self) -> BlockCacheStats {
        self.blocks.stats
    }

    /// Install `policy` for the coming run: drop pins from the previous
    /// run, then pin the PCs the new inspector may corrupt at fetch time.
    fn apply_fetch_policy(&mut self, policy: FetchPolicy) {
        let old = std::mem::take(&mut self.pinned_pcs);
        for pc in old {
            self.mem.unpin_fetch(pc);
        }
        match policy {
            FetchPolicy::None => self.pin_all = false,
            FetchPolicy::All => self.pin_all = true,
            FetchPolicy::Pcs(pcs) => {
                self.pin_all = false;
                for &pc in &pcs {
                    self.mem.pin_fetch_slow(pc);
                }
                self.pinned_pcs = pcs;
            }
        }
    }

    /// Execute until completion, trap, or budget/output exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if no image has been loaded.
    pub fn run<I: Inspector>(&mut self, inspector: &mut I) -> RunOutcome {
        assert!(self.loaded, "Machine::load must be called before run");
        self.apply_fetch_policy(inspector.fetch_policy());
        match self.run_inner(inspector) {
            RunControl::Done(outcome) => outcome,
            // No breakpoint is armed outside `run_to_fetch`.
            RunControl::Break => unreachable!("fetch breakpoint outside run_to_fetch"),
        }
    }

    /// Execute until `pc` is about to be fetched for the `nth` time (a
    /// trigger-point breakpoint), or until the run ends first.
    ///
    /// On [`FetchStop::Hit`] the machine is paused *before* the fetch:
    /// the instruction at `pc` has not executed, no fetch hook has seen
    /// it, and an `OpcodeFetch`-triggered fault resumed from here observes
    /// its `nth` occurrence on the very next fetch. The second return
    /// value is the number of arrivals at `pc` observed — on
    /// [`FetchStop::Finished`] this is the run's *total* occurrence count
    /// for the trigger, which is what proves later faults dormant.
    ///
    /// The break PC is pinned to the slow fetch path for this run (and
    /// unpinned when the next run installs its policy) so the cached
    /// interpreter funnels every arrival through the step path where the
    /// breakpoint is checked.
    ///
    /// # Panics
    ///
    /// Panics if no image is loaded, if `nth == 0`, or on a multi-core
    /// machine — a mid-quantum pause cannot capture the scheduler position
    /// of the other cores, so prefix forking is single-core only.
    pub fn run_to_fetch<I: Inspector>(
        &mut self,
        pc: u32,
        nth: u64,
        inspector: &mut I,
    ) -> (FetchStop, u64) {
        assert!(self.loaded, "Machine::load must be called before run");
        assert!(nth >= 1, "occurrence counts are 1-based");
        assert_eq!(
            self.cores.len(),
            1,
            "fetch breakpoints require a single-core machine"
        );
        self.apply_fetch_policy(inspector.fetch_policy());
        self.mem.pin_fetch_slow(pc);
        if !self.pinned_pcs.contains(&pc) {
            self.pinned_pcs.push(pc);
        }
        self.fetch_break = Some(FetchBreak { pc, nth, seen: 0 });
        let control = self.run_inner(inspector);
        let seen = self.fetch_break.take().map_or(0, |fb| fb.seen);
        match control {
            RunControl::Break => (FetchStop::Hit, seen),
            RunControl::Done(outcome) => (FetchStop::Finished(outcome), seen),
        }
    }

    /// The scheduler loop shared by [`Machine::run`] and
    /// [`Machine::run_to_fetch`]; the fetch policy is already applied.
    fn run_inner<I: Inspector>(&mut self, inspector: &mut I) -> RunControl {
        // The cached interpreter runs whole quanta through the tight
        // split-borrow executor; reference mode and `FetchPolicy::All`
        // take the seed per-step loop below. When the block interpreter is
        // enabled, cached quanta additionally dispatch whole translated
        // basic blocks.
        let cached = !self.reference_interp && !self.pin_all;
        let use_blocks = cached && self.block_interp;
        // The watchdog polls the wall clock every `watchdog_poll`-th
        // scheduler round, starting with round 0 so a zero-length deadline
        // (tests, CI smoke) fires deterministically before any instruction
        // retires.
        let wd_poll = self.watchdog_poll;
        let mut wd_round: u32 = 0;
        loop {
            // The output cap is checked on the syscall path (the only place
            // output grows — see `Progress::OutputLimit`), not here, so the
            // hot loop pays for the budget comparison alone.
            if self.retired >= self.config.budget {
                return RunControl::Done(RunOutcome::Hang {
                    output: std::mem::take(&mut self.output),
                });
            }
            if let Some(deadline) = self.deadline {
                if wd_round == 0 && Instant::now() >= deadline {
                    return RunControl::Done(RunOutcome::Hang {
                        output: std::mem::take(&mut self.output),
                    });
                }
                wd_round = (wd_round + 1) % wd_poll;
            }
            let mut any_running = false;
            for c in 0..self.cores.len() {
                if self.cores[c].state != CoreState::Running {
                    continue;
                }
                any_running = true;
                if cached {
                    let progress = if use_blocks {
                        self.run_quantum_blocks(c, inspector)
                    } else {
                        self.run_quantum_cached(c, inspector)
                    };
                    match progress {
                        Ok(Progress::Continue | Progress::StateChange) => {}
                        Ok(Progress::Breakpoint) => return RunControl::Break,
                        Ok(Progress::OutputLimit) => {
                            return RunControl::Done(RunOutcome::Hang {
                                output: std::mem::take(&mut self.output),
                            });
                        }
                        Err((trap, pc)) => {
                            return RunControl::Done(RunOutcome::Trapped {
                                trap,
                                pc,
                                core: c,
                                output: std::mem::take(&mut self.output),
                            });
                        }
                    }
                    continue;
                }
                let quantum = self.config.quantum;
                for _ in 0..quantum {
                    if self.retired >= self.config.budget {
                        break;
                    }
                    match self.step(c, inspector) {
                        Ok(Progress::Continue) => {}
                        Ok(Progress::StateChange) => break,
                        Ok(Progress::Breakpoint) => return RunControl::Break,
                        Ok(Progress::OutputLimit) => {
                            return RunControl::Done(RunOutcome::Hang {
                                output: std::mem::take(&mut self.output),
                            });
                        }
                        Err((trap, pc)) => {
                            return RunControl::Done(RunOutcome::Trapped {
                                trap,
                                pc,
                                core: c,
                                output: std::mem::take(&mut self.output),
                            });
                        }
                    }
                }
            }
            // Barrier release: *every* core of the machine must arrive. A
            // halted (or crashed) partner therefore deadlocks the barrier,
            // which the budget turns into the hang failure mode — matching
            // the global-barrier semantics of the paper's Parix target.
            let waiting = self
                .cores
                .iter()
                .filter(|c| c.state == CoreState::WaitingBarrier)
                .count();
            if waiting > 0 && waiting == self.cores.len() {
                for c in &mut self.cores {
                    if c.state == CoreState::WaitingBarrier {
                        c.state = CoreState::Running;
                    }
                }
                continue;
            }
            if self
                .cores
                .iter()
                .all(|c| matches!(c.state, CoreState::Halted(_)))
            {
                let exit_code = match self.cores[0].state {
                    CoreState::Halted(code) => code,
                    _ => unreachable!(),
                };
                return RunControl::Done(RunOutcome::Completed {
                    exit_code,
                    output: std::mem::take(&mut self.output),
                });
            }
            if !any_running {
                // Deadlock (e.g. barrier with a halted partner): burn budget
                // so the run ends as a hang, like the paper's watchdog.
                self.retired += self.cores.len() as u64 * self.config.quantum as u64;
            }
        }
    }

    /// Execute up to one scheduling quantum on core `c` straight from the
    /// decoded line cache — the cached interpreter's hot loop.
    ///
    /// The machine's borrows are split once per tight segment (`cores` /
    /// `mem` / `retired`), the program counter lives in a register, and
    /// register indices are masked to elide bounds checks; the segment runs
    /// until something needs the full machine: a slow fetch (pinned PC,
    /// missing/illegal line, PC outside the cache), a syscall, or a halt.
    /// Those fall back to [`Machine::step`] — the seed interpreter — for
    /// exactly one instruction, so every observable (traps, hook order,
    /// `on_fetch` corruption, output) is produced by the same code on both
    /// interpreters. The differential property suite pins the equivalence.
    fn run_quantum_cached<I: Inspector>(
        &mut self,
        c: usize,
        insp: &mut I,
    ) -> Result<Progress, (Trap, u32)> {
        self.run_quantum_body::<I, false>(c, insp)
    }

    /// [`Machine::run_quantum_cached`] with basic-block dispatch on top:
    /// before each per-instruction dispatch the executor first tries to run
    /// a whole translated block (see [`crate::blocks`]). Anything a block
    /// cannot represent — pinned PCs, syscalls, halts, illegal words, PCs
    /// outside the cache, a block that would overrun the quantum or budget
    /// countdown — falls through to the identical per-instruction code, so
    /// observables and accounting are byte-for-byte the same.
    fn run_quantum_blocks<I: Inspector>(
        &mut self,
        c: usize,
        insp: &mut I,
    ) -> Result<Progress, (Trap, u32)> {
        self.run_quantum_body::<I, true>(c, insp)
    }

    /// Shared executor behind [`Machine::run_quantum_cached`] (`BLOCKS =
    /// false`) and [`Machine::run_quantum_blocks`] (`BLOCKS = true`); the
    /// const generic lets each mode compile to its own specialised loop
    /// with zero dynamic dispatch in the hot path.
    fn run_quantum_body<I: Inspector, const BLOCKS: bool>(
        &mut self,
        c: usize,
        insp: &mut I,
    ) -> Result<Progress, (Trap, u32)> {
        // The scheduling quantum exists to interleave cores; with a single
        // core there is nothing to interleave and no observable difference
        // between quanta, so run until a state change or the budget ends
        // instead of bouncing through the outer scheduler every 64 steps.
        let quantum = if self.cores.len() == 1 {
            u32::MAX
        } else {
            self.config.quantum
        };
        let budget = self.config.budget;
        let output_limit = self.config.output_limit;
        let mut steps: u32 = 0;
        while steps < quantum {
            let slow = 'tight: {
                let Machine {
                    cores,
                    mem,
                    blocks,
                    retired,
                    alloc,
                    input,
                    output,
                    ..
                } = &mut *self;
                let num_cores = cores.len();
                let core = &mut cores[c];
                let mut pc = core.pc;
                // Disjoint halves of the block cache: the executor holds a
                // `&Block` out of `blk_store` across a whole dispatch while
                // still bumping `blk_stats`.
                let BlockCache {
                    store: blk_store,
                    stats: blk_stats,
                } = &mut *blocks;
                // Fuse the quantum and budget limits into one countdown
                // register; the architectural `retired` counter is
                // committed on every exit from the segment (the macro
                // below and the explicit commits on the trap returns).
                let seg: u64 = ((quantum - steps) as u64).min(budget.saturating_sub(*retired));
                let mut left = seg;
                macro_rules! commit {
                    () => {{
                        let done = seg - left;
                        *retired += done;
                        #[allow(unused_assignments)]
                        {
                            steps += done as u32;
                        }
                        core.pc = pc;
                    }};
                }
                // On every exit the architectural `core.pc` is re-synced;
                // on a trap it equals the faulting pc, exactly as the seed
                // interpreter leaves it.
                macro_rules! mem_op {
                    ($e:expr) => {
                        match $e {
                            Ok(v) => v,
                            Err(t) => {
                                commit!();
                                return Err((t, pc));
                            }
                        }
                    };
                }
                macro_rules! reg {
                    ($r:expr) => {
                        core.regs[($r & 31) as usize]
                    };
                }
                macro_rules! set_reg {
                    ($rd:expr, $val:expr) => {{
                        let mut v: u32 = $val;
                        insp.on_reg_write(c, pc, $rd, &mut v);
                        reg!($rd) = v;
                        if $rd == 1 && v < core.stack_floor {
                            commit!();
                            return Err((Trap::StackOverflow, pc));
                        }
                    }};
                }
                while left > 0 {
                    if BLOCKS {
                        // Apply pending code writes (injector pokes, guest
                        // stores, restore diffs, pin changes) to the block
                        // cache before trusting any translation.
                        if mem.has_code_writes()
                            && mem.drain_code_writes(|a, b| {
                                blk_store.invalidate_words(a, b, blk_stats)
                            })
                        {
                            blk_store.flush_all(blk_stats);
                        }
                        if let Some(blk) = blk_store.lookup_or_translate(pc, mem, blk_stats) {
                            let cost = u64::from(blk.cost);
                            // A block never crosses the fused quantum/budget
                            // countdown: if it does not fit, the tail of the
                            // segment runs per-instruction instead, keeping
                            // scheduler interleaving and hang accounting
                            // byte-identical to the cached interpreter.
                            if cost <= left {
                                blk_stats.block_hits += 1;
                                left -= cost;
                                if insp.block_quiescent(c, pc, blk.last_pc()) {
                                    // Hook-free fast body: the inspector
                                    // has vouched (see
                                    // `Inspector::block_quiescent`) that
                                    // every per-instruction hook over this
                                    // range is a no-op and that retires
                                    // may be batched, so each sub-op is
                                    // just its architectural work. Trap
                                    // PCs are reconstructed as
                                    // `bstart + 4·done_ops` — block ops
                                    // are contiguous by construction.
                                    let bstart = pc;
                                    let mut done_ops: u32 = 0;
                                    let mut store_abort = false;
                                    macro_rules! qtrap {
                                        ($t:expr) => {{
                                            let bpc = bstart.wrapping_add(done_ops.wrapping_mul(4));
                                            insp.on_block_retire(c, bstart, done_ops);
                                            blk_stats.block_instrs += u64::from(done_ops);
                                            left += cost - u64::from(done_ops);
                                            pc = bpc;
                                            commit!();
                                            return Err(($t, bpc));
                                        }};
                                    }
                                    macro_rules! qmem_op {
                                        ($e:expr) => {
                                            match $e {
                                                Ok(v) => v,
                                                Err(t) => qtrap!(t),
                                            }
                                        };
                                    }
                                    macro_rules! qset_reg {
                                        ($rd:expr, $val:expr) => {{
                                            let v: u32 = $val;
                                            reg!($rd) = v;
                                            if $rd == 1 && v < core.stack_floor {
                                                qtrap!(Trap::StackOverflow);
                                            }
                                        }};
                                    }
                                    'qbody: for step in blk.body.iter() {
                                        match *step {
                                            Step::Op(instr) => {
                                                match instr {
                                                    Instr::Addi { rd, ra, imm } => {
                                                        qset_reg!(
                                                            rd,
                                                            reg!(ra)
                                                                .wrapping_add(imm as i32 as u32)
                                                        );
                                                    }
                                                    Instr::Addis { rd, ra, imm } => {
                                                        qset_reg!(
                                                            rd,
                                                            reg!(ra).wrapping_add(
                                                                (imm as i32 as u32) << 16
                                                            )
                                                        );
                                                    }
                                                    Instr::Andi { rd, ra, imm } => {
                                                        qset_reg!(rd, reg!(ra) & imm as u32);
                                                    }
                                                    Instr::Ori { rd, ra, imm } => {
                                                        qset_reg!(rd, reg!(ra) | imm as u32);
                                                    }
                                                    Instr::Xori { rd, ra, imm } => {
                                                        qset_reg!(rd, reg!(ra) ^ imm as u32);
                                                    }
                                                    Instr::Cmpi { crf, ra, imm } => {
                                                        let a = reg!(ra) as i32;
                                                        let b = imm as i32;
                                                        core.set_cr_field(
                                                            crf,
                                                            a < b,
                                                            a > b,
                                                            a == b,
                                                        );
                                                    }
                                                    Instr::Cmp { crf, ra, rb } => {
                                                        let a = reg!(ra) as i32;
                                                        let b = reg!(rb) as i32;
                                                        core.set_cr_field(
                                                            crf,
                                                            a < b,
                                                            a > b,
                                                            a == b,
                                                        );
                                                    }
                                                    Instr::Alu { op, rd, ra, rb } => {
                                                        let a = reg!(ra);
                                                        let b = reg!(rb);
                                                        let v = match op {
                                                            AluOp::Add => a.wrapping_add(b),
                                                            AluOp::Sub => a.wrapping_sub(b),
                                                            AluOp::Mullw => (a as i32)
                                                                .wrapping_mul(b as i32)
                                                                as u32,
                                                            AluOp::Divw => {
                                                                if b == 0 {
                                                                    qtrap!(Trap::DivideByZero);
                                                                }
                                                                (a as i32).wrapping_div(b as i32)
                                                                    as u32
                                                            }
                                                            AluOp::Divwu => {
                                                                if b == 0 {
                                                                    qtrap!(Trap::DivideByZero);
                                                                }
                                                                a / b
                                                            }
                                                            AluOp::Remw => {
                                                                if b == 0 {
                                                                    qtrap!(Trap::DivideByZero);
                                                                }
                                                                (a as i32).wrapping_rem(b as i32)
                                                                    as u32
                                                            }
                                                            AluOp::And => a & b,
                                                            AluOp::Or => a | b,
                                                            AluOp::Xor => a ^ b,
                                                            AluOp::Nand => !(a & b),
                                                            AluOp::Nor => !(a | b),
                                                            AluOp::Slw => a.wrapping_shl(b & 31),
                                                            AluOp::Srw => a.wrapping_shr(b & 31),
                                                            AluOp::Sraw => {
                                                                ((a as i32).wrapping_shr(b & 31))
                                                                    as u32
                                                            }
                                                            AluOp::Neg => {
                                                                (a as i32).wrapping_neg() as u32
                                                            }
                                                            AluOp::Not => !a,
                                                        };
                                                        qset_reg!(rd, v);
                                                    }
                                                    Instr::Lwz { rd, ra, d } => {
                                                        let addr =
                                                            reg!(ra).wrapping_add(d as i32 as u32);
                                                        let v = qmem_op!(mem.read_u32(addr));
                                                        qset_reg!(rd, v);
                                                    }
                                                    Instr::Lbz { rd, ra, d } => {
                                                        let addr =
                                                            reg!(ra).wrapping_add(d as i32 as u32);
                                                        let v = qmem_op!(mem.read_u8(addr));
                                                        qset_reg!(rd, v as u32);
                                                    }
                                                    Instr::Stw { rs, ra, d } => {
                                                        let addr =
                                                            reg!(ra).wrapping_add(d as i32 as u32);
                                                        qmem_op!(mem.write_u32(addr, reg!(rs)));
                                                        if mem.has_code_writes() {
                                                            done_ops += 1;
                                                            store_abort = true;
                                                            break 'qbody;
                                                        }
                                                    }
                                                    Instr::Stb { rs, ra, d } => {
                                                        let addr =
                                                            reg!(ra).wrapping_add(d as i32 as u32);
                                                        qmem_op!(mem.write_u8(
                                                            addr,
                                                            (reg!(rs) & 0xFF) as u8
                                                        ));
                                                        if mem.has_code_writes() {
                                                            done_ops += 1;
                                                            store_abort = true;
                                                            break 'qbody;
                                                        }
                                                    }
                                                    Instr::Mflr { rd } => {
                                                        qset_reg!(rd, core.lr);
                                                    }
                                                    Instr::Mtlr { ra } => {
                                                        core.lr = reg!(ra);
                                                    }
                                                    Instr::B { .. }
                                                    | Instr::Bl { .. }
                                                    | Instr::Bc { .. }
                                                    | Instr::Blr
                                                    | Instr::Sc { .. }
                                                    | Instr::Halt => {
                                                        unreachable!(
                                                            "control transfer in block body"
                                                        )
                                                    }
                                                }
                                                done_ops += 1;
                                            }
                                            Step::Addi2 {
                                                rd1,
                                                ra1,
                                                imm1,
                                                rd2,
                                                ra2,
                                                imm2,
                                            } => {
                                                qset_reg!(
                                                    rd1,
                                                    reg!(ra1).wrapping_add(imm1 as i32 as u32)
                                                );
                                                done_ops += 1;
                                                qset_reg!(
                                                    rd2,
                                                    reg!(ra2).wrapping_add(imm2 as i32 as u32)
                                                );
                                                done_ops += 1;
                                            }
                                        }
                                    }
                                    if store_abort {
                                        insp.on_block_retire(c, bstart, done_ops);
                                        blk_stats.block_instrs += u64::from(done_ops);
                                        left += cost - u64::from(done_ops);
                                        pc = bstart.wrapping_add(done_ops.wrapping_mul(4));
                                        continue;
                                    }
                                    match blk.term {
                                        Term::Jump { target } => pc = target,
                                        Term::Call { target, link } => {
                                            core.lr = link;
                                            pc = target;
                                        }
                                        Term::CondJump {
                                            crf,
                                            bit,
                                            expect,
                                            taken,
                                            fallthrough,
                                        } => {
                                            pc = if core.cr_bit(crf, bit) == expect {
                                                taken
                                            } else {
                                                fallthrough
                                            };
                                        }
                                        Term::CmpiCondJump {
                                            ra,
                                            imm,
                                            crf,
                                            bit,
                                            expect,
                                            taken,
                                            fallthrough,
                                        } => {
                                            let a = reg!(ra) as i32;
                                            let b = imm as i32;
                                            core.set_cr_field(crf, a < b, a > b, a == b);
                                            pc = if core.cr_bit(crf, bit) == expect {
                                                taken
                                            } else {
                                                fallthrough
                                            };
                                        }
                                        Term::Return => pc = core.lr,
                                        Term::Fallthrough { next } => pc = next,
                                    }
                                    debug_assert!(u64::from(done_ops) <= cost);
                                    insp.on_block_retire(c, bstart, blk.cost);
                                    blk_stats.block_instrs += cost;
                                    continue;
                                }
                                // `bpc` tracks the architectural PC of the
                                // in-flight sub-op; `done_ops` counts those
                                // retired so far, so a mid-block trap or
                                // store-abort can settle the countdown and
                                // stats exactly.
                                let mut bpc = pc;
                                let mut done_ops: u64 = 0;
                                let mut store_abort = false;
                                macro_rules! bsettle {
                                    () => {{
                                        blk_stats.block_instrs += done_ops;
                                        left += cost - done_ops;
                                        pc = bpc;
                                    }};
                                }
                                macro_rules! btrap {
                                    ($t:expr) => {{
                                        bsettle!();
                                        commit!();
                                        return Err(($t, bpc));
                                    }};
                                }
                                macro_rules! bmem_op {
                                    ($e:expr) => {
                                        match $e {
                                            Ok(v) => v,
                                            Err(t) => btrap!(t),
                                        }
                                    };
                                }
                                macro_rules! bset_reg {
                                    ($rd:expr, $val:expr) => {{
                                        let mut v: u32 = $val;
                                        insp.on_reg_write(c, bpc, $rd, &mut v);
                                        reg!($rd) = v;
                                        if $rd == 1 && v < core.stack_floor {
                                            btrap!(Trap::StackOverflow);
                                        }
                                    }};
                                }
                                macro_rules! bretire {
                                    () => {{
                                        done_ops += 1;
                                        insp.on_retire(c, bpc);
                                        bpc = bpc.wrapping_add(4);
                                    }};
                                }
                                'body: for step in blk.body.iter() {
                                    match *step {
                                        Step::Op(instr) => {
                                            match instr {
                                                Instr::Addi { rd, ra, imm } => {
                                                    bset_reg!(
                                                        rd,
                                                        reg!(ra).wrapping_add(imm as i32 as u32)
                                                    );
                                                }
                                                Instr::Addis { rd, ra, imm } => {
                                                    bset_reg!(
                                                        rd,
                                                        reg!(ra).wrapping_add(
                                                            (imm as i32 as u32) << 16
                                                        )
                                                    );
                                                }
                                                Instr::Andi { rd, ra, imm } => {
                                                    bset_reg!(rd, reg!(ra) & imm as u32);
                                                }
                                                Instr::Ori { rd, ra, imm } => {
                                                    bset_reg!(rd, reg!(ra) | imm as u32);
                                                }
                                                Instr::Xori { rd, ra, imm } => {
                                                    bset_reg!(rd, reg!(ra) ^ imm as u32);
                                                }
                                                Instr::Cmpi { crf, ra, imm } => {
                                                    let a = reg!(ra) as i32;
                                                    let b = imm as i32;
                                                    core.set_cr_field(crf, a < b, a > b, a == b);
                                                }
                                                Instr::Cmp { crf, ra, rb } => {
                                                    let a = reg!(ra) as i32;
                                                    let b = reg!(rb) as i32;
                                                    core.set_cr_field(crf, a < b, a > b, a == b);
                                                }
                                                Instr::Alu { op, rd, ra, rb } => {
                                                    let a = reg!(ra);
                                                    let b = reg!(rb);
                                                    let v = match op {
                                                        AluOp::Add => a.wrapping_add(b),
                                                        AluOp::Sub => a.wrapping_sub(b),
                                                        AluOp::Mullw => {
                                                            (a as i32).wrapping_mul(b as i32) as u32
                                                        }
                                                        AluOp::Divw => {
                                                            if b == 0 {
                                                                btrap!(Trap::DivideByZero);
                                                            }
                                                            (a as i32).wrapping_div(b as i32) as u32
                                                        }
                                                        AluOp::Divwu => {
                                                            if b == 0 {
                                                                btrap!(Trap::DivideByZero);
                                                            }
                                                            a / b
                                                        }
                                                        AluOp::Remw => {
                                                            if b == 0 {
                                                                btrap!(Trap::DivideByZero);
                                                            }
                                                            (a as i32).wrapping_rem(b as i32) as u32
                                                        }
                                                        AluOp::And => a & b,
                                                        AluOp::Or => a | b,
                                                        AluOp::Xor => a ^ b,
                                                        AluOp::Nand => !(a & b),
                                                        AluOp::Nor => !(a | b),
                                                        AluOp::Slw => a.wrapping_shl(b & 31),
                                                        AluOp::Srw => a.wrapping_shr(b & 31),
                                                        AluOp::Sraw => {
                                                            ((a as i32).wrapping_shr(b & 31)) as u32
                                                        }
                                                        AluOp::Neg => {
                                                            (a as i32).wrapping_neg() as u32
                                                        }
                                                        AluOp::Not => !a,
                                                    };
                                                    bset_reg!(rd, v);
                                                }
                                                Instr::Lwz { rd, ra, d } => {
                                                    let mut addr =
                                                        reg!(ra).wrapping_add(d as i32 as u32);
                                                    insp.on_load_addr(c, bpc, &mut addr);
                                                    let mut v = bmem_op!(mem.read_u32(addr));
                                                    insp.on_load_value(c, bpc, addr, &mut v);
                                                    bset_reg!(rd, v);
                                                }
                                                Instr::Lbz { rd, ra, d } => {
                                                    let mut addr =
                                                        reg!(ra).wrapping_add(d as i32 as u32);
                                                    insp.on_load_addr(c, bpc, &mut addr);
                                                    let mut v = bmem_op!(mem.read_u8(addr)) as u32;
                                                    insp.on_load_value(c, bpc, addr, &mut v);
                                                    bset_reg!(rd, v);
                                                }
                                                Instr::Stw { rs, ra, d } => {
                                                    let mut addr =
                                                        reg!(ra).wrapping_add(d as i32 as u32);
                                                    insp.on_store_addr(c, bpc, &mut addr);
                                                    let mut v = reg!(rs);
                                                    insp.on_store_value(c, bpc, addr, &mut v);
                                                    bmem_op!(mem.write_u32(addr, v));
                                                    if mem.has_code_writes() {
                                                        // Self-modifying store:
                                                        // retire it, then leave
                                                        // the block so the next
                                                        // dispatch re-reads the
                                                        // patched code.
                                                        bretire!();
                                                        store_abort = true;
                                                        break 'body;
                                                    }
                                                }
                                                Instr::Stb { rs, ra, d } => {
                                                    let mut addr =
                                                        reg!(ra).wrapping_add(d as i32 as u32);
                                                    insp.on_store_addr(c, bpc, &mut addr);
                                                    let mut v = reg!(rs) & 0xFF;
                                                    insp.on_store_value(c, bpc, addr, &mut v);
                                                    bmem_op!(mem.write_u8(addr, v as u8));
                                                    if mem.has_code_writes() {
                                                        bretire!();
                                                        store_abort = true;
                                                        break 'body;
                                                    }
                                                }
                                                Instr::Mflr { rd } => {
                                                    bset_reg!(rd, core.lr);
                                                }
                                                Instr::Mtlr { ra } => {
                                                    core.lr = reg!(ra);
                                                }
                                                Instr::B { .. }
                                                | Instr::Bl { .. }
                                                | Instr::Bc { .. }
                                                | Instr::Blr
                                                | Instr::Sc { .. }
                                                | Instr::Halt => {
                                                    unreachable!("control transfer in block body")
                                                }
                                            }
                                            bretire!();
                                        }
                                        Step::Addi2 {
                                            rd1,
                                            ra1,
                                            imm1,
                                            rd2,
                                            ra2,
                                            imm2,
                                        } => {
                                            bset_reg!(
                                                rd1,
                                                reg!(ra1).wrapping_add(imm1 as i32 as u32)
                                            );
                                            bretire!();
                                            bset_reg!(
                                                rd2,
                                                reg!(ra2).wrapping_add(imm2 as i32 as u32)
                                            );
                                            bretire!();
                                        }
                                    }
                                }
                                if store_abort {
                                    bsettle!();
                                    continue;
                                }
                                match blk.term {
                                    Term::Jump { target } => {
                                        insp.on_retire(c, bpc);
                                        done_ops += 1;
                                        pc = target;
                                    }
                                    Term::Call { target, link } => {
                                        core.lr = link;
                                        insp.on_retire(c, bpc);
                                        done_ops += 1;
                                        pc = target;
                                    }
                                    Term::CondJump {
                                        crf,
                                        bit,
                                        expect,
                                        taken,
                                        fallthrough,
                                    } => {
                                        pc = if core.cr_bit(crf, bit) == expect {
                                            taken
                                        } else {
                                            fallthrough
                                        };
                                        insp.on_retire(c, bpc);
                                        done_ops += 1;
                                    }
                                    Term::CmpiCondJump {
                                        ra,
                                        imm,
                                        crf,
                                        bit,
                                        expect,
                                        taken,
                                        fallthrough,
                                    } => {
                                        let a = reg!(ra) as i32;
                                        let b = imm as i32;
                                        core.set_cr_field(crf, a < b, a > b, a == b);
                                        insp.on_retire(c, bpc);
                                        bpc = bpc.wrapping_add(4);
                                        pc = if core.cr_bit(crf, bit) == expect {
                                            taken
                                        } else {
                                            fallthrough
                                        };
                                        insp.on_retire(c, bpc);
                                        done_ops += 2;
                                    }
                                    Term::Return => {
                                        pc = core.lr;
                                        insp.on_retire(c, bpc);
                                        done_ops += 1;
                                    }
                                    Term::Fallthrough { next } => {
                                        pc = next;
                                    }
                                }
                                debug_assert_eq!(done_ops, cost);
                                blk_stats.block_instrs += cost;
                                continue;
                            }
                        }
                        // No usable block at this PC (or it would overrun
                        // the countdown): one per-instruction dispatch.
                        blk_stats.fallback_dispatches += 1;
                    }
                    let instr = match mem.fetch_decoded(pc) {
                        Some(i) => i,
                        None => {
                            commit!();
                            break 'tight true;
                        }
                    };
                    let mut next_pc = pc.wrapping_add(4);
                    match instr {
                        Instr::Addi { rd, ra, imm } => {
                            set_reg!(rd, reg!(ra).wrapping_add(imm as i32 as u32));
                        }
                        Instr::Addis { rd, ra, imm } => {
                            set_reg!(rd, reg!(ra).wrapping_add((imm as i32 as u32) << 16));
                        }
                        Instr::Andi { rd, ra, imm } => {
                            set_reg!(rd, reg!(ra) & imm as u32);
                        }
                        Instr::Ori { rd, ra, imm } => {
                            set_reg!(rd, reg!(ra) | imm as u32);
                        }
                        Instr::Xori { rd, ra, imm } => {
                            set_reg!(rd, reg!(ra) ^ imm as u32);
                        }
                        Instr::Cmpi { crf, ra, imm } => {
                            let a = reg!(ra) as i32;
                            let b = imm as i32;
                            core.set_cr_field(crf, a < b, a > b, a == b);
                        }
                        Instr::Cmp { crf, ra, rb } => {
                            let a = reg!(ra) as i32;
                            let b = reg!(rb) as i32;
                            core.set_cr_field(crf, a < b, a > b, a == b);
                        }
                        Instr::Alu { op, rd, ra, rb } => {
                            let a = reg!(ra);
                            let b = reg!(rb);
                            let v = match op {
                                AluOp::Add => a.wrapping_add(b),
                                AluOp::Sub => a.wrapping_sub(b),
                                AluOp::Mullw => (a as i32).wrapping_mul(b as i32) as u32,
                                AluOp::Divw => {
                                    if b == 0 {
                                        commit!();
                                        return Err((Trap::DivideByZero, pc));
                                    }
                                    (a as i32).wrapping_div(b as i32) as u32
                                }
                                AluOp::Divwu => {
                                    if b == 0 {
                                        commit!();
                                        return Err((Trap::DivideByZero, pc));
                                    }
                                    a / b
                                }
                                AluOp::Remw => {
                                    if b == 0 {
                                        commit!();
                                        return Err((Trap::DivideByZero, pc));
                                    }
                                    (a as i32).wrapping_rem(b as i32) as u32
                                }
                                AluOp::And => a & b,
                                AluOp::Or => a | b,
                                AluOp::Xor => a ^ b,
                                AluOp::Nand => !(a & b),
                                AluOp::Nor => !(a | b),
                                AluOp::Slw => a.wrapping_shl(b & 31),
                                AluOp::Srw => a.wrapping_shr(b & 31),
                                AluOp::Sraw => ((a as i32).wrapping_shr(b & 31)) as u32,
                                AluOp::Neg => (a as i32).wrapping_neg() as u32,
                                AluOp::Not => !a,
                            };
                            set_reg!(rd, v);
                        }
                        Instr::Lwz { rd, ra, d } => {
                            let mut addr = reg!(ra).wrapping_add(d as i32 as u32);
                            insp.on_load_addr(c, pc, &mut addr);
                            let mut v = mem_op!(mem.read_u32(addr));
                            insp.on_load_value(c, pc, addr, &mut v);
                            set_reg!(rd, v);
                        }
                        Instr::Lbz { rd, ra, d } => {
                            let mut addr = reg!(ra).wrapping_add(d as i32 as u32);
                            insp.on_load_addr(c, pc, &mut addr);
                            let mut v = mem_op!(mem.read_u8(addr)) as u32;
                            insp.on_load_value(c, pc, addr, &mut v);
                            set_reg!(rd, v);
                        }
                        Instr::Stw { rs, ra, d } => {
                            let mut addr = reg!(ra).wrapping_add(d as i32 as u32);
                            insp.on_store_addr(c, pc, &mut addr);
                            let mut v = reg!(rs);
                            insp.on_store_value(c, pc, addr, &mut v);
                            mem_op!(mem.write_u32(addr, v));
                        }
                        Instr::Stb { rs, ra, d } => {
                            let mut addr = reg!(ra).wrapping_add(d as i32 as u32);
                            insp.on_store_addr(c, pc, &mut addr);
                            let mut v = reg!(rs) & 0xFF;
                            insp.on_store_value(c, pc, addr, &mut v);
                            mem_op!(mem.write_u8(addr, v as u8));
                        }
                        Instr::B { off } => {
                            next_pc = pc.wrapping_add((off as u32).wrapping_mul(4));
                        }
                        Instr::Bl { off } => {
                            core.lr = pc.wrapping_add(4);
                            next_pc = pc.wrapping_add((off as u32).wrapping_mul(4));
                        }
                        Instr::Bc {
                            crf,
                            bit,
                            expect,
                            off,
                        } => {
                            if core.cr_bit(crf, bit) == expect {
                                next_pc = pc.wrapping_add((off as i32 as u32).wrapping_mul(4));
                            }
                        }
                        Instr::Blr => {
                            next_pc = core.lr;
                        }
                        Instr::Mflr { rd } => {
                            set_reg!(rd, core.lr);
                        }
                        Instr::Mtlr { ra } => {
                            core.lr = reg!(ra);
                        }
                        Instr::Sc { call } => {
                            match call {
                                // Core-state transitions: the outer
                                // scheduler must observe them. Re-sync and
                                // take the seed path for this instruction.
                                Syscall::Exit | Syscall::Barrier => {
                                    commit!();
                                    break 'tight true;
                                }
                                Syscall::PrintInt => {
                                    let v = reg!(3) as i32;
                                    output.extend_from_slice(v.to_string().as_bytes());
                                }
                                Syscall::PrintChar => {
                                    output.push(reg!(3) as u8);
                                }
                                Syscall::PrintStr => {
                                    let s = mem_op!(mem.read_cstr(reg!(3), 1 << 16));
                                    output.extend_from_slice(&s);
                                }
                                Syscall::ReadInt => match input.ints.pop_front() {
                                    Some(v) => {
                                        reg!(3) = v as u32;
                                        reg!(4) = 0;
                                    }
                                    None => {
                                        reg!(3) = 0;
                                        reg!(4) = 1;
                                    }
                                },
                                Syscall::ReadByte => match input.bytes.pop_front() {
                                    Some(b) => reg!(3) = b as u32,
                                    None => reg!(3) = u32::MAX,
                                },
                                Syscall::Malloc => {
                                    reg!(3) = alloc.malloc(reg!(3));
                                }
                                Syscall::Free => {
                                    mem_op!(alloc.free(reg!(3)));
                                }
                                Syscall::CoreId => {
                                    reg!(3) = c as u32;
                                }
                                Syscall::NumCores => {
                                    reg!(3) = num_cores as u32;
                                }
                            }
                            // The output cap is only checked where output
                            // can grow, mirroring `Machine::step`: the
                            // syscall instruction itself still retires.
                            if output.len() > output_limit {
                                left -= 1;
                                insp.on_retire(c, pc);
                                pc = next_pc;
                                commit!();
                                return Ok(Progress::OutputLimit);
                            }
                        }
                        Instr::Halt => {
                            // Rare: a core-state transition the outer
                            // scheduler must observe. Re-sync and take the
                            // seed path for this instruction.
                            commit!();
                            break 'tight true;
                        }
                    }
                    left -= 1;
                    insp.on_retire(c, pc);
                    pc = next_pc;
                }
                commit!();
                false
            };
            if !slow {
                // Quantum or budget exhausted; the outer scheduler decides.
                return Ok(Progress::Continue);
            }
            match self.step(c, insp)? {
                Progress::Continue => steps += 1,
                p => return Ok(p),
            }
        }
        Ok(Progress::Continue)
    }

    /// The seed fetch path: read the word, offer it to the inspector for
    /// corruption, decode the (possibly corrupted) result. Taken for pinned
    /// PCs, PCs outside the cached code region, words that do not decode,
    /// and — for every PC — under `FetchPolicy::All` or reference mode.
    #[inline]
    fn fetch_slow<I: Inspector>(
        &mut self,
        c: usize,
        pc: u32,
        insp: &mut I,
    ) -> Result<Instr, (Trap, u32)> {
        self.mem.note_slow_fetch();
        let mut word = self.mem.read_u32(pc).map_err(|t| (t, pc))?;
        insp.on_fetch(c, pc, &mut word);
        isa::decode(word).map_err(|e| (Trap::IllegalInstruction { word: e.word }, pc))
    }

    fn step<I: Inspector>(&mut self, c: usize, insp: &mut I) -> Result<Progress, (Trap, u32)> {
        let pc = self.cores[c].pc;
        // Fetch breakpoint (`run_to_fetch`): checked before the fetch so a
        // hit pauses the machine with the trigger instruction unexecuted
        // and unobserved. The break PC is pinned, so in cached mode every
        // arrival funnels through this step path.
        if let Some(fb) = &mut self.fetch_break {
            if pc == fb.pc {
                fb.seen += 1;
                if fb.seen >= fb.nth {
                    return Ok(Progress::Breakpoint);
                }
            }
        }
        let instr = if self.reference_interp || self.pin_all {
            self.fetch_slow(c, pc, insp)?
        } else {
            // Fast path: replay the predecoded line. `None` covers every
            // case that needs fetch semantics (pin, illegal word, PC
            // outside the cache, misalignment) — fall back to the exact
            // seed path so traps and `on_fetch` corruption are identical.
            match self.mem.fetch_decoded(pc) {
                Some(i) => i,
                None => self.fetch_slow(c, pc, insp)?,
            }
        };
        let mut next_pc = pc.wrapping_add(4);
        let mut progress = Progress::Continue;

        macro_rules! set_reg {
            ($rd:expr, $val:expr) => {{
                let mut v: u32 = $val;
                insp.on_reg_write(c, pc, $rd, &mut v);
                self.cores[c].regs[$rd as usize] = v;
                // Guard-page model: moving the stack pointer below the
                // core's stack floor traps (runaway recursion ⇒ crash).
                if $rd == 1 && v < self.cores[c].stack_floor {
                    return Err((Trap::StackOverflow, pc));
                }
            }};
        }

        match instr {
            Instr::Addi { rd, ra, imm } => {
                set_reg!(
                    rd,
                    self.cores[c].regs[ra as usize].wrapping_add(imm as i32 as u32)
                );
            }
            Instr::Addis { rd, ra, imm } => {
                set_reg!(
                    rd,
                    self.cores[c].regs[ra as usize].wrapping_add((imm as i32 as u32) << 16)
                );
            }
            Instr::Andi { rd, ra, imm } => {
                set_reg!(rd, self.cores[c].regs[ra as usize] & imm as u32);
            }
            Instr::Ori { rd, ra, imm } => {
                set_reg!(rd, self.cores[c].regs[ra as usize] | imm as u32);
            }
            Instr::Xori { rd, ra, imm } => {
                set_reg!(rd, self.cores[c].regs[ra as usize] ^ imm as u32);
            }
            Instr::Cmpi { crf, ra, imm } => {
                let a = self.cores[c].regs[ra as usize] as i32;
                let b = imm as i32;
                self.cores[c].set_cr_field(crf, a < b, a > b, a == b);
            }
            Instr::Cmp { crf, ra, rb } => {
                let a = self.cores[c].regs[ra as usize] as i32;
                let b = self.cores[c].regs[rb as usize] as i32;
                self.cores[c].set_cr_field(crf, a < b, a > b, a == b);
            }
            Instr::Alu { op, rd, ra, rb } => {
                let a = self.cores[c].regs[ra as usize];
                let b = self.cores[c].regs[rb as usize];
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mullw => (a as i32).wrapping_mul(b as i32) as u32,
                    AluOp::Divw => {
                        if b == 0 {
                            return Err((Trap::DivideByZero, pc));
                        }
                        (a as i32).wrapping_div(b as i32) as u32
                    }
                    AluOp::Divwu => {
                        if b == 0 {
                            return Err((Trap::DivideByZero, pc));
                        }
                        a / b
                    }
                    AluOp::Remw => {
                        if b == 0 {
                            return Err((Trap::DivideByZero, pc));
                        }
                        (a as i32).wrapping_rem(b as i32) as u32
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Nand => !(a & b),
                    AluOp::Nor => !(a | b),
                    AluOp::Slw => a.wrapping_shl(b & 31),
                    AluOp::Srw => a.wrapping_shr(b & 31),
                    AluOp::Sraw => ((a as i32).wrapping_shr(b & 31)) as u32,
                    AluOp::Neg => (a as i32).wrapping_neg() as u32,
                    AluOp::Not => !a,
                };
                set_reg!(rd, v);
            }
            Instr::Lwz { rd, ra, d } => {
                let mut addr = self.cores[c].regs[ra as usize].wrapping_add(d as i32 as u32);
                insp.on_load_addr(c, pc, &mut addr);
                let mut v = self.mem.read_u32(addr).map_err(|t| (t, pc))?;
                insp.on_load_value(c, pc, addr, &mut v);
                set_reg!(rd, v);
            }
            Instr::Lbz { rd, ra, d } => {
                let mut addr = self.cores[c].regs[ra as usize].wrapping_add(d as i32 as u32);
                insp.on_load_addr(c, pc, &mut addr);
                let mut v = self.mem.read_u8(addr).map_err(|t| (t, pc))? as u32;
                insp.on_load_value(c, pc, addr, &mut v);
                set_reg!(rd, v);
            }
            Instr::Stw { rs, ra, d } => {
                let mut addr = self.cores[c].regs[ra as usize].wrapping_add(d as i32 as u32);
                insp.on_store_addr(c, pc, &mut addr);
                let mut v = self.cores[c].regs[rs as usize];
                insp.on_store_value(c, pc, addr, &mut v);
                self.mem.write_u32(addr, v).map_err(|t| (t, pc))?;
            }
            Instr::Stb { rs, ra, d } => {
                let mut addr = self.cores[c].regs[ra as usize].wrapping_add(d as i32 as u32);
                insp.on_store_addr(c, pc, &mut addr);
                let mut v = self.cores[c].regs[rs as usize] & 0xFF;
                insp.on_store_value(c, pc, addr, &mut v);
                self.mem.write_u8(addr, v as u8).map_err(|t| (t, pc))?;
            }
            Instr::B { off } => {
                next_pc = pc.wrapping_add((off as u32).wrapping_mul(4));
            }
            Instr::Bl { off } => {
                self.cores[c].lr = pc.wrapping_add(4);
                next_pc = pc.wrapping_add((off as u32).wrapping_mul(4));
            }
            Instr::Bc {
                crf,
                bit,
                expect,
                off,
            } => {
                if self.cores[c].cr_bit(crf, bit) == expect {
                    next_pc = pc.wrapping_add((off as i32 as u32).wrapping_mul(4));
                }
            }
            Instr::Blr => {
                next_pc = self.cores[c].lr;
            }
            Instr::Mflr { rd } => {
                set_reg!(rd, self.cores[c].lr);
            }
            Instr::Mtlr { ra } => {
                self.cores[c].lr = self.cores[c].regs[ra as usize];
            }
            Instr::Halt => {
                self.cores[c].state = CoreState::Halted(self.cores[c].regs[3] as i32);
                progress = Progress::StateChange;
            }
            Instr::Sc { call } => {
                self.syscall(c, call, pc).map_err(|t| (t, pc))?;
                if self.output.len() > self.config.output_limit {
                    progress = Progress::OutputLimit;
                } else if self.cores[c].state != CoreState::Running {
                    progress = Progress::StateChange;
                }
            }
        }
        self.cores[c].pc = next_pc;
        self.retired += 1;
        insp.on_retire(c, pc);
        Ok(progress)
    }

    fn syscall(&mut self, c: usize, call: Syscall, _pc: u32) -> Result<(), Trap> {
        match call {
            Syscall::Exit => {
                self.cores[c].state = CoreState::Halted(self.cores[c].regs[3] as i32);
            }
            Syscall::PrintInt => {
                let v = self.cores[c].regs[3] as i32;
                self.output.extend_from_slice(v.to_string().as_bytes());
            }
            Syscall::PrintChar => {
                self.output.push(self.cores[c].regs[3] as u8);
            }
            Syscall::PrintStr => {
                let s = self.mem.read_cstr(self.cores[c].regs[3], 1 << 16)?;
                self.output.extend_from_slice(&s);
            }
            Syscall::ReadInt => match self.input.ints.pop_front() {
                Some(v) => {
                    self.cores[c].regs[3] = v as u32;
                    self.cores[c].regs[4] = 0;
                }
                None => {
                    self.cores[c].regs[3] = 0;
                    self.cores[c].regs[4] = 1;
                }
            },
            Syscall::ReadByte => match self.input.bytes.pop_front() {
                Some(b) => self.cores[c].regs[3] = b as u32,
                None => self.cores[c].regs[3] = u32::MAX,
            },
            Syscall::Malloc => {
                let size = self.cores[c].regs[3];
                self.cores[c].regs[3] = self.alloc.malloc(size);
            }
            Syscall::Free => {
                self.alloc.free(self.cores[c].regs[3])?;
            }
            Syscall::CoreId => {
                self.cores[c].regs[3] = c as u32;
            }
            Syscall::NumCores => {
                self.cores[c].regs[3] = self.cores.len() as u32;
            }
            Syscall::Barrier => {
                self.cores[c].state = CoreState::WaitingBarrier;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::inspect::Noop;

    fn run_src(src: &str) -> RunOutcome {
        run_src_with(src, InputTape::new(), MachineConfig::default())
    }

    fn run_src_with(src: &str, input: InputTape, config: MachineConfig) -> RunOutcome {
        let image = assemble(src).expect("assembles");
        let mut m = Machine::new(config);
        m.load(&image);
        m.set_input(input);
        m.run(&mut Noop)
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run_src(
            "addi r3, r0, 7
             addi r4, r0, 6
             mullw r3, r3, r4
             sc print_int
             addi r3, r0, 0
             halt",
        );
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b"42".to_vec()
            }
        );
    }

    #[test]
    fn exit_code_propagates() {
        let out = run_src("addi r3, r0, 3\nhalt");
        assert!(matches!(out, RunOutcome::Completed { exit_code: 3, .. }));
    }

    #[test]
    fn division_by_zero_traps() {
        let out = run_src("addi r3, r0, 1\naddi r4, r0, 0\ndivw r3, r3, r4\nhalt");
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::DivideByZero,
                ..
            }
        ));
    }

    #[test]
    fn null_deref_traps() {
        let out = run_src("addi r4, r0, 0\nlwz r3, 0(r4)\nhalt");
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::Unmapped { addr: 0 },
                ..
            }
        ));
    }

    #[test]
    fn wild_store_traps() {
        let out = run_src("addis r4, r0, 4096\nstw r3, 0(r4)\nhalt");
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::Unmapped { .. },
                ..
            }
        ));
    }

    #[test]
    fn misaligned_word_traps() {
        let out = run_src("addi r4, r0, 258\nlwz r3, 0(r4)\nhalt");
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::Misaligned { .. },
                ..
            }
        ));
    }

    #[test]
    fn illegal_instruction_traps() {
        // Branch into the zeroed data area past the code.
        let out = run_src("b 4\nhalt");
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::IllegalInstruction { word: 0 },
                ..
            }
        ));
    }

    #[test]
    fn infinite_loop_hangs() {
        let config = MachineConfig {
            budget: 10_000,
            ..MachineConfig::default()
        };
        let out = run_src_with("b 0", InputTape::new(), config);
        assert!(matches!(out, RunOutcome::Hang { .. }));
    }

    #[test]
    fn expired_watchdog_deadline_hangs() {
        // A zero-length deadline fires on scheduler round 0, before any
        // instruction retires — the deterministic form of "the run blew
        // its wall-clock budget".
        let image = assemble("addi r3, r0, 0\nhalt").expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.set_deadline(Some(Instant::now()));
        let out = m.run(&mut Noop);
        assert!(matches!(out, RunOutcome::Hang { .. }));
        assert_eq!(m.retired(), 0, "watchdog fired before execution");

        // Disarming restores normal completion on the same machine.
        m.load(&image);
        m.set_deadline(None);
        assert!(matches!(m.run(&mut Noop), RunOutcome::Completed { .. }));

        // A generous deadline does not perturb a short run.
        m.load(&image);
        m.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        assert!(matches!(m.run(&mut Noop), RunOutcome::Completed { .. }));
    }

    #[test]
    fn watchdog_poll_interval_is_configurable() {
        let image = assemble("addi r3, r0, 0\nhalt").expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        // Round 0 always polls, so expiry stays deterministic at any
        // interval — including a degenerate 0, which clamps to 1.
        for rounds in [1u32, 0, 7, 4096] {
            m.set_watchdog_poll(rounds);
            m.load(&image);
            m.set_deadline(Some(Instant::now()));
            let before = m.retired();
            let out = m.run(&mut Noop);
            assert!(matches!(out, RunOutcome::Hang { .. }), "poll {rounds}");
            // `retired` is cumulative across loads; the expired run must
            // not have advanced it.
            assert_eq!(m.retired(), before, "poll {rounds}");
            // And unexpired deadlines stay harmless at that interval.
            m.load(&image);
            m.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
            assert!(matches!(m.run(&mut Noop), RunOutcome::Completed { .. }));
        }
    }

    #[test]
    fn print_loop_hits_output_cap() {
        let config = MachineConfig {
            budget: u64::MAX / 2,
            output_limit: 4096,
            ..MachineConfig::default()
        };
        let out = run_src_with(
            "addi r3, r0, 65
             sc print_char
             b -1",
            InputTape::new(),
            config,
        );
        assert!(matches!(out, RunOutcome::Hang { .. }));
    }

    #[test]
    fn loop_with_branch_counts_down() {
        // r5 = 5; while (r5 != 0) { print '.'; r5--; }
        let out = run_src(
            "addi r5, r0, 5
             cmpi cr0, r5, 0
             bc cr0.eq, 1, 5
             addi r3, r0, 46
             sc print_char
             addi r5, r5, -1
             b -5
             addi r3, r0, 0
             halt",
        );
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b".....".to_vec()
            }
        );
    }

    #[test]
    fn call_and_return() {
        // main: bl f; print r3; halt.  f: r3 = 9; blr
        let out = run_src(
            "bl 4
             sc print_int
             addi r3, r0, 0
             halt
             nop
             addi r3, r0, 9
             blr",
        );
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b"9".to_vec()
            }
        );
    }

    #[test]
    fn read_int_and_eof_flag() {
        let mut input = InputTape::new();
        input.push_ints([11, 22]);
        let out = run_src_with(
            "sc read_int
             sc print_int
             sc read_int
             sc print_int
             sc read_int
             addi r3, r4, 0
             sc print_int
             addi r3, r0, 0
             halt",
            input,
            MachineConfig::default(),
        );
        // Third read hits EOF: value 0, r4 (eof flag) = 1.
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b"11221".to_vec()
            }
        );
    }

    #[test]
    fn read_byte_eof_is_minus_one() {
        let out = run_src(
            "sc read_byte
             sc print_int
             addi r3, r0, 0
             halt",
        );
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b"-1".to_vec()
            }
        );
    }

    #[test]
    fn malloc_free_and_heap_fault() {
        let out = run_src(
            "addi r3, r0, 64
             sc malloc
             addi r5, r3, 0
             sc free
             addi r3, r5, 0
             sc free
             halt",
        );
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::HeapFault { .. },
                ..
            }
        ));
    }

    #[test]
    fn malloc_store_load_round_trip() {
        let out = run_src(
            "addi r3, r0, 8
             sc malloc
             addi r6, r0, 77
             stw r6, 4(r3)
             lwz r3, 4(r3)
             sc print_int
             addi r3, r0, 0
             halt",
        );
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b"77".to_vec()
            }
        );
    }

    #[test]
    fn stack_overflow_traps() {
        // Infinitely push the stack down.
        let out = run_src(
            "addi r1, r1, -1024
             b -1",
        );
        assert!(matches!(
            out,
            RunOutcome::Trapped {
                trap: Trap::StackOverflow,
                ..
            }
        ));
    }

    #[test]
    fn stack_use_within_bounds_ok() {
        let out = run_src(
            "addi r1, r1, -16
             addi r6, r0, 5
             stw r6, 0(r1)
             lwz r3, 0(r1)
             sc print_int
             addi r1, r1, 16
             addi r3, r0, 0
             halt",
        );
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b"5".to_vec()
            }
        );
    }

    #[test]
    fn multicore_barrier_and_core_id() {
        // Each core prints its id, barriers, then core 0 prints "done".
        let src = "
            sc core_id
            sc print_int
            sc barrier
            sc core_id
            cmpi cr0, r3, 0
            bc cr0.eq, 0, 4
            addi r3, r0, 33
            sc print_char
            addi r3, r0, 0
            halt";
        let image = assemble(src).unwrap();
        let mut m = Machine::new(MachineConfig {
            num_cores: 2,
            quantum: 1,
            ..MachineConfig::default()
        });
        m.load(&image);
        let out = m.run(&mut Noop);
        match out {
            RunOutcome::Completed {
                exit_code: 0,
                output,
            } => {
                let s = String::from_utf8(output).unwrap();
                // Both ids print before the barrier; '!' printed once after.
                assert_eq!(s.matches('!').count(), 1);
                assert!(s.contains('0') && s.contains('1'));
                assert!(s.ends_with('!'));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn barrier_deadlock_hangs() {
        // Core 1 halts immediately; core 0 waits forever at the barrier.
        let src = "
            sc core_id
            cmpi cr0, r3, 0
            bc cr0.eq, 0, 3
            sc barrier
            addi r3, r0, 0
            halt
            addi r3, r0, 0
            halt";
        let image = assemble(src).unwrap();
        let mut m = Machine::new(MachineConfig {
            num_cores: 2,
            budget: 100_000,
            ..MachineConfig::default()
        });
        m.load(&image);
        assert!(matches!(m.run(&mut Noop), RunOutcome::Hang { .. }));
    }

    #[test]
    fn fresh_machine_is_deterministic() {
        let src = "addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt";
        let a = run_src(src);
        let b = run_src(src);
        assert_eq!(a, b);
    }

    #[test]
    fn warm_restore_matches_cold_boot() {
        // A program that dirties stack, heap, and globals, reads input and
        // prints — everything a restore must undo.
        let src = "
            sc read_int
            addi r5, r3, 0
            addi r3, r0, 32
            sc malloc
            addi r6, r3, 0
            stw r5, 0(r6)
            addi r1, r1, -16
            stw r5, 0(r1)
            lwz r3, 0(r6)
            sc print_int
            addi r1, r1, 16
            addi r3, r6, 0
            sc free
            addi r3, r0, 0
            halt";
        let image = assemble(src).unwrap();
        let mut input = InputTape::new();
        input.push_ints([41]);

        // Cold-boot reference outcome.
        let cold = {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            m.set_input(input.clone());
            m.run(&mut Noop)
        };

        // Warm-reboot machine: snapshot once, run/restore repeatedly with
        // varying inputs in between to make sure restore really resets.
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.set_input(input.clone());
        let snap = m.snapshot();
        for round in 0..4 {
            if round > 0 {
                m.restore(&snap);
            }
            let out = m.run(&mut Noop);
            assert_eq!(out, cold, "round {round} diverged from cold boot");
            assert_eq!(m.allocator().live_blocks(), 0);
        }
    }

    #[test]
    fn restore_undoes_pokes_made_after_snapshot() {
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let snap = m.snapshot();
        // Corrupt the code (as a memory-resident fault would), run, restore.
        m.poke_u32(
            0x100,
            crate::isa::encode(Instr::Addi {
                rd: 3,
                ra: 0,
                imm: 9,
            }),
        )
        .unwrap();
        assert_eq!(m.run(&mut Noop).output(), b"9");
        m.restore(&snap);
        assert_eq!(m.run(&mut Noop).output(), b"1");
    }

    #[test]
    fn restore_is_cheap_in_pages() {
        // A short run must dirty only a few pages of the 1 MiB space.
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let snap = m.snapshot();
        assert_eq!(m.dirty_pages(), 0);
        let _ = m.run(&mut Noop);
        let dirtied = m.dirty_pages();
        assert!(
            dirtied <= 4,
            "tiny run should touch few pages, got {dirtied}"
        );
        m.restore(&snap);
        assert_eq!(m.dirty_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "before snapshot")]
    fn snapshot_requires_load() {
        let mut m = Machine::new(MachineConfig::default());
        let _ = m.snapshot();
    }

    #[test]
    fn multicore_machine_restores_too() {
        let src = "
            sc core_id
            sc print_int
            sc barrier
            addi r3, r0, 0
            halt";
        let image = assemble(src).unwrap();
        let config = MachineConfig {
            num_cores: 2,
            quantum: 1,
            ..MachineConfig::default()
        };
        let cold = {
            let mut m = Machine::new(config.clone());
            m.load(&image);
            m.run(&mut Noop)
        };
        let mut m = Machine::new(config);
        m.load(&image);
        let snap = m.snapshot();
        for _ in 0..3 {
            assert_eq!(m.run(&mut Noop), cold);
            m.restore(&snap);
        }
    }

    #[test]
    fn cached_and_reference_interpreters_agree() {
        // A program exercising arithmetic, branches, calls, memory and
        // syscalls; run it under both interpreters and compare outcomes
        // and retired-instruction counts exactly.
        let src = "
            addi r5, r0, 10
            cmpi cr0, r5, 0
            bc cr0.eq, 1, 6
            addi r3, r5, 0
            sc print_int
            bl 3
            addi r5, r5, -1
            b -6
            addi r3, r0, 0
            halt
            addi r6, r6, 1
            blr";
        let image = assemble(src).unwrap();
        let run_mode = |reference: bool| {
            let mut m = Machine::new(MachineConfig::default());
            m.set_reference_interp(reference);
            m.load(&image);
            let out = m.run(&mut Noop);
            (out, m.retired())
        };
        let (cached_out, cached_retired) = run_mode(false);
        let (ref_out, ref_retired) = run_mode(true);
        assert_eq!(cached_out, ref_out);
        assert_eq!(cached_retired, ref_retired);
    }

    #[test]
    fn decode_cache_stats_reflect_execution() {
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let _ = m.run(&mut Noop);
        let stats = m.decode_cache_stats();
        assert_eq!(stats.lines_built, 4, "one line per executed instruction");
        assert_eq!(stats.slow_fetches, 0, "Noop never forces the slow path");

        // A second run from a snapshot reuses every line.
        m.load(&image);
        let snap = m.snapshot();
        let _ = m.run(&mut Noop);
        let first = m.decode_cache_stats().lines_built;
        m.restore(&snap);
        let _ = m.run(&mut Noop);
        assert_eq!(
            m.decode_cache_stats().lines_built,
            first,
            "warm rerun decodes nothing new"
        );
    }

    #[test]
    fn reference_mode_counts_slow_fetches() {
        let image = assemble("addi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.set_reference_interp(true);
        m.load(&image);
        let _ = m.run(&mut Noop);
        let stats = m.decode_cache_stats();
        assert_eq!(stats.lines_built, 0);
        assert_eq!(stats.slow_fetches, m.retired());
    }

    #[test]
    fn fetch_policy_all_disables_cache_for_the_run() {
        // An inspector with the default (All) policy must see on_fetch for
        // every instruction even with the cache initialised.
        struct CountFetches(u64);
        impl Inspector for CountFetches {
            fn on_fetch(&mut self, _c: usize, _pc: u32, _w: &mut u32) {
                self.0 += 1;
            }
        }
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut insp = CountFetches(0);
        let _ = m.run(&mut insp);
        assert_eq!(insp.0, m.retired());

        // A subsequent Noop run re-enables the cache.
        m.load(&image);
        let _ = m.run(&mut Noop);
        assert_eq!(m.decode_cache_stats().slow_fetches, 0);
    }

    #[test]
    fn fetch_policy_pcs_pins_only_armed_addresses() {
        use crate::inspect::FetchPolicy;
        // Corrupt the fetch at 0x104 (print_int → nop-like ori) while the
        // rest of the program runs from the cache.
        struct PinOne {
            seen: u64,
        }
        impl Inspector for PinOne {
            fn fetch_policy(&self) -> FetchPolicy {
                FetchPolicy::Pcs(vec![0x104])
            }
            fn on_fetch(&mut self, _c: usize, pc: u32, word: &mut u32) {
                assert_eq!(pc, 0x104, "only the pinned PC reaches on_fetch");
                self.seen += 1;
                *word = isa::NOP;
            }
        }
        let image = assemble("addi r3, r0, 7\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut insp = PinOne { seen: 0 };
        let out = m.run(&mut insp);
        assert_eq!(insp.seen, 1);
        assert_eq!(out.output(), b"", "print was corrupted away at fetch");
        assert_eq!(m.decode_cache_stats().slow_fetches, 1);

        // The pin is dropped for the next run: the pristine word executes.
        m.load(&image);
        let out = m.run(&mut Noop);
        assert_eq!(out.output(), b"7");
    }

    #[test]
    fn self_modifying_store_into_code_is_seen_by_cached_interpreter() {
        // Execute the target instruction once (so its cache line is
        // decoded), then store a `halt` word over it and re-enter it. With
        // a stale cache the original benign word replays and the run
        // hangs; with correct invalidation both interpreters complete.
        //
        // halt encodes as op::HALT << 26, and addis places its immediate
        // in the upper halfword: r6 = (0x13 << 10) << 16 = halt.
        let halt_hi = (isa::encode(Instr::Halt) >> 16) as i32;
        let src = format!(
            "addis r6, r0, {halt_hi}
             nop
             addi r7, r0, 280
             b 3
             stw r6, 0(r7)
             b 1
             addi r8, r0, 0
             b -3"
        );
        // Layout: 0x10C branches to the target at 0x118 (decoding its
        // line), 0x11C branches back to the stw at 0x110, which patches
        // 0x118; 0x114 then re-enters 0x118, which must now be halt.
        let image = assemble(&src).unwrap();
        for reference in [false, true] {
            let mut m = Machine::new(MachineConfig {
                budget: 100_000,
                ..MachineConfig::default()
            });
            m.set_reference_interp(reference);
            m.load(&image);
            let out = m.run(&mut Noop);
            assert!(
                matches!(out, RunOutcome::Completed { exit_code: 0, .. }),
                "self-modified halt must execute (reference={reference}), got {out:?}"
            );
        }
    }

    #[test]
    fn output_limit_fires_from_syscall_path() {
        // Regression for the hoisted output-limit check: the cap is now
        // enforced on the syscall path, and a silent (non-printing) loop
        // still hangs via the budget.
        let config = MachineConfig {
            budget: u64::MAX / 2,
            output_limit: 64,
            ..MachineConfig::default()
        };
        let out = run_src_with(
            "addi r3, r0, 88
             sc print_char
             b -1",
            InputTape::new(),
            config,
        );
        match out {
            RunOutcome::Hang { output } => {
                assert_eq!(output.len(), 65, "hang fires on the first overflow");
                assert!(output.iter().all(|&b| b == b'X'));
            }
            other => panic!("expected hang, got {other:?}"),
        }
    }

    /// Countdown loop used by the breakpoint/fork tests: prints '.' five
    /// times. The loop body `addi r3, r0, 46` sits at `CODE_BASE + 12`.
    const LOOP_SRC: &str = "addi r5, r0, 5
         cmpi cr0, r5, 0
         bc cr0.eq, 1, 5
         addi r3, r0, 46
         sc print_char
         addi r5, r5, -1
         b -5
         addi r3, r0, 0
         halt";

    #[test]
    fn run_to_fetch_counts_occurrences() {
        let image = assemble(LOOP_SRC).expect("assembles");
        let body = CODE_BASE + 12;

        // Hit on the 3rd arrival: two dots printed, the 3rd unexecuted.
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let (stop, seen) = m.run_to_fetch(body, 3, &mut Noop);
        assert_eq!(stop, FetchStop::Hit);
        assert_eq!(seen, 3);
        assert_eq!(m.core(0).pc, body, "paused at the break pc");

        // Continuing runs exactly the tail of a full run, output included.
        let out = m.run(&mut Noop);
        assert_eq!(
            out,
            RunOutcome::Completed {
                exit_code: 0,
                output: b".....".to_vec()
            }
        );

        // More occurrences than ever happen: the run finishes and reports
        // the total arrival count (which proves sparser triggers dormant).
        let mut m2 = Machine::new(MachineConfig::default());
        m2.load(&image);
        let (stop, seen) = m2.run_to_fetch(body, 99, &mut Noop);
        assert!(matches!(
            stop,
            FetchStop::Finished(RunOutcome::Completed { exit_code: 0, .. })
        ));
        assert_eq!(seen, 5);

        // A PC that is never fetched: Finished with zero arrivals.
        let mut m3 = Machine::new(MachineConfig::default());
        m3.load(&image);
        let (stop, seen) = m3.run_to_fetch(0xF000, 1, &mut Noop);
        assert!(matches!(stop, FetchStop::Finished(_)));
        assert_eq!(seen, 0);
    }

    #[test]
    fn run_to_fetch_matches_reference_interp_counts() {
        let image = assemble(LOOP_SRC).expect("assembles");
        let body = CODE_BASE + 12;
        for reference in [false, true] {
            let mut m = Machine::new(MachineConfig::default());
            m.set_reference_interp(reference);
            m.load(&image);
            let (stop, seen) = m.run_to_fetch(body, 4, &mut Noop);
            assert_eq!(stop, FetchStop::Hit, "reference={reference}");
            assert_eq!(seen, 4);
            let out = m.run(&mut Noop);
            assert_eq!(out.output(), b".....", "reference={reference}");
        }
    }

    #[test]
    fn fork_snapshot_resumes_identically() {
        // A loop that consumes input per iteration, so the fork must carry
        // the half-consumed tape: read n, then read+print n more ints.
        let src = "sc read_int
             addi r5, r3, 0
             cmpi cr0, r5, 0
             bc cr0.eq, 1, 6
             sc read_int
             stw r3, -4(r1)
             sc print_int
             addi r5, r5, -1
             b -6
             addi r3, r0, 0
             halt";
        let image = assemble(src).unwrap();
        let body = CODE_BASE + 16; // the in-loop `sc read_int`
        let tape = || {
            let mut t = InputTape::new();
            t.push_ints([3, 10, 20, 30]);
            t
        };

        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.set_input(tape());
        let base = m.snapshot();
        let full = m.run(&mut Noop);
        let full_retired = m.retired();
        assert_eq!(full.output(), b"102030");

        // Capture at the 2nd loop read (10 printed, 20 unread), resume.
        m.restore(&base);
        let (stop, _) = m.run_to_fetch(body, 2, &mut Noop);
        assert_eq!(stop, FetchStop::Hit);
        let fork = m.fork_snapshot();
        assert!(fork.retired() > 0 && fork.retired() < full_retired);
        assert!(fork.delta_pages() > 0);

        // Divert the machine first so the fork restore has real work.
        let _ = m.run(&mut Noop);
        m.restore_fork(&base, &fork);
        assert_eq!(m.retired(), fork.retired());
        let resumed = m.run(&mut Noop);
        assert_eq!(resumed, full, "forked suffix diverged from full run");
        assert_eq!(m.retired(), full_retired);

        // The same fork restores onto an identically-built twin (how
        // pooled campaign workers share one prefix cache).
        let mut twin = Machine::new(MachineConfig::default());
        twin.load(&image);
        twin.set_input(tape());
        let tbase = twin.snapshot();
        twin.restore_fork(&tbase, &fork);
        assert_eq!(twin.run(&mut Noop), full);
        assert_eq!(twin.retired(), full_retired);

        // And a plain restore after a fork restore recovers the baseline.
        m.restore(&base);
        assert_eq!(m.run(&mut Noop), full);
    }

    #[test]
    fn block_stats_reflect_execution_and_toggle() {
        // The countdown loop runs almost entirely from translated blocks.
        let image = assemble(LOOP_SRC).expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let out = m.run(&mut Noop);
        assert_eq!(out.output(), b".....");
        let stats = m.block_cache_stats();
        assert!(stats.blocks_built > 0, "hot blocks translated");
        assert!(stats.block_hits > 0, "loop re-dispatches translated blocks");
        assert!(stats.block_instrs > 0 && stats.block_instrs <= m.retired());
        assert!(
            stats.fallback_dispatches > 0,
            "syscalls and halt dispatch per-instruction"
        );

        // Disabling the block interpreter pins the line-cached path:
        // identical observables, no block activity.
        let mut m2 = Machine::new(MachineConfig::default());
        m2.set_block_interp(false);
        assert!(!m2.block_interp());
        m2.load(&image);
        let out2 = m2.run(&mut Noop);
        assert_eq!(out2, out);
        assert_eq!(m2.retired(), m.retired());
        assert_eq!(
            m2.block_cache_stats(),
            crate::blocks::BlockCacheStats::default()
        );
    }

    #[test]
    fn block_and_cached_interpreters_retire_identically() {
        // Same program as the cached-vs-reference differential, compared
        // across all three tiers of the fetch pipeline.
        let src = "
            addi r5, r0, 10
            cmpi cr0, r5, 0
            bc cr0.eq, 1, 6
            addi r3, r5, 0
            sc print_int
            bl 3
            addi r5, r5, -1
            b -6
            addi r3, r0, 0
            halt
            addi r6, r6, 1
            blr";
        let image = assemble(src).unwrap();
        let run_mode = |blocks: bool, reference: bool| {
            let mut m = Machine::new(MachineConfig::default());
            m.set_block_interp(blocks);
            m.set_reference_interp(reference);
            m.load(&image);
            let out = m.run(&mut Noop);
            (out, m.retired())
        };
        let blocked = run_mode(true, false);
        assert_eq!(blocked, run_mode(false, false));
        assert_eq!(blocked, run_mode(false, true));
    }

    #[test]
    fn injector_poke_invalidates_translated_blocks() {
        use crate::isa::encode;
        // Translate the block on a warm run, then poke a word *inside* it
        // (as a memory-resident fault would) and rerun: a stale block
        // would replay the original immediate.
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let snap = m.snapshot();
        assert_eq!(m.run(&mut Noop).output(), b"1");
        assert!(m.block_cache_stats().blocks_built > 0);

        m.restore(&snap);
        m.poke_u32(
            CODE_BASE,
            encode(Instr::Addi {
                rd: 3,
                ra: 0,
                imm: 9,
            }),
        )
        .unwrap();
        assert_eq!(m.run(&mut Noop).output(), b"9", "poke reached the block");
        assert!(m.block_cache_stats().blocks_invalidated > 0);

        // The restore diff rolls the poke back — and the block with it.
        m.restore(&snap);
        assert_eq!(m.run(&mut Noop).output(), b"1");
    }

    #[test]
    fn guest_store_into_code_invalidates_blocks_mid_run() {
        // The self-modifying program from the cached-interpreter test also
        // pins the block path (the default mode of `run`): the store aborts
        // its block and the patched word executes.
        let halt_hi = (isa::encode(Instr::Halt) >> 16) as i32;
        let src = format!(
            "addis r6, r0, {halt_hi}
             nop
             addi r7, r0, 280
             b 3
             stw r6, 0(r7)
             b 1
             addi r8, r0, 0
             b -3"
        );
        let image = assemble(&src).unwrap();
        let mut m = Machine::new(MachineConfig {
            budget: 100_000,
            ..MachineConfig::default()
        });
        m.load(&image);
        let out = m.run(&mut Noop);
        assert!(
            matches!(out, RunOutcome::Completed { exit_code: 0, .. }),
            "self-modified halt must execute under block dispatch, got {out:?}"
        );
        assert!(m.block_cache_stats().blocks_invalidated > 0);
    }

    #[test]
    fn fork_restore_invalidates_translated_blocks() {
        use crate::isa::encode;
        // A fork whose delta patches a code word: restoring it must kill
        // the block translated from the pristine code, and a plain restore
        // afterwards must kill the patched translation again.
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let base = m.snapshot();
        m.poke_u32(
            CODE_BASE,
            encode(Instr::Addi {
                rd: 3,
                ra: 0,
                imm: 7,
            }),
        )
        .unwrap();
        let fork = m.fork_snapshot();

        m.restore(&base);
        assert_eq!(m.run(&mut Noop).output(), b"1", "pristine code translated");
        m.restore_fork(&base, &fork);
        assert_eq!(m.retired(), 0);
        assert_eq!(m.run(&mut Noop).output(), b"7", "fork delta reached blocks");
        m.restore(&base);
        assert_eq!(m.run(&mut Noop).output(), b"1", "plain restore rolls back");
    }

    #[test]
    fn run_to_fetch_pin_truncates_blocks_then_retranslates() {
        // Arming a fetch breakpoint inside a previously translated block
        // must funnel arrivals through the step path (where the breakpoint
        // lives); dropping the pin lets the full block translate again.
        let image = assemble(LOOP_SRC).expect("assembles");
        let body = CODE_BASE + 12;
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let snap = m.snapshot();
        assert_eq!(m.run(&mut Noop).output(), b".....");

        m.restore(&snap);
        let (stop, seen) = m.run_to_fetch(body, 3, &mut Noop);
        assert_eq!(stop, FetchStop::Hit);
        assert_eq!(seen, 3);
        assert_eq!(m.core(0).pc, body);
        let resumed = m.run(&mut Noop);
        assert_eq!(resumed.output(), b".....");

        // Next ordinary run drops the pin; the loop runs from blocks again.
        m.restore(&snap);
        let before = m.block_cache_stats().block_hits;
        assert_eq!(m.run(&mut Noop).output(), b".....");
        assert!(m.block_cache_stats().block_hits > before);
    }

    #[test]
    fn poke_changes_executed_code() {
        use crate::isa::{encode, Instr};
        let image = assemble("addi r3, r0, 1\nsc print_int\naddi r3, r0, 0\nhalt").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        // Overwrite the first instruction: r3 = 9 instead of 1.
        m.poke_u32(
            0x100,
            encode(Instr::Addi {
                rd: 3,
                ra: 0,
                imm: 9,
            }),
        )
        .unwrap();
        let out = m.run(&mut Noop);
        assert_eq!(out.output(), b"9");
    }
}
