//! Two-pass textual assembler and programmatic code builder.
//!
//! The textual syntax matches the `Display` output of [`Instr`], plus
//! labels, data directives, numeric *word* branch offsets, and a few
//! pseudo-instructions:
//!
//! ```text
//! loop:                       ; label
//!     li   r5, 100000         ; load 32-bit immediate (1–2 words)
//!     la   r4, table          ; load address of a label (2 words)
//!     mr   r6, r5             ; register move
//!     nop
//!     cmpi cr0, r5, 0
//!     bc   cr0.eq, 1, done    ; branch to label (or numeric word offset)
//!     addi r5, r5, -1
//!     b    loop
//! done:
//!     halt
//! .data
//! table: .word 1, 2, 3
//! msg:   .asciz "hello"
//! buf:   .space 64
//! ```
//!
//! Comments start with `;` or `#`. The [`CodeBuilder`] offers the same
//! capabilities to code generators (the MiniC compiler) without text
//! round-trips.

use std::collections::HashMap;
use std::fmt;

use crate::isa::{encode, AluOp, CrBit, Instr, Syscall, NOP};
use crate::mem::{Image, CODE_BASE};

/// Error produced while assembling, with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the assembly source.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

/// A pending branch/address reference to a label.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Fixup {
    /// `b`/`bl` word offset (26-bit).
    Branch26 {
        at: usize,
        label: String,
        link: bool,
        line: usize,
    },
    /// `bc` word offset (16-bit).
    Branch16 {
        at: usize,
        label: String,
        crf: u8,
        bit: CrBit,
        expect: bool,
        line: usize,
    },
    /// `la` 32-bit absolute address across two words (`addis`+`ori`).
    Addr32 {
        at: usize,
        rd: u8,
        label: String,
        line: usize,
    },
}

/// Incremental machine-code builder with labels and fixups.
///
/// Used directly by code generators; the textual [`assemble`] function is a
/// thin parser on top of it.
///
/// # Examples
///
/// ```
/// use swifi_vm::asm::CodeBuilder;
/// use swifi_vm::isa::Instr;
///
/// let mut b = CodeBuilder::new();
/// b.label("start");
/// b.push(Instr::Addi { rd: 3, ra: 0, imm: 1 });
/// b.branch_to("start", false);
/// let image = b.finish()?;
/// assert_eq!(image.code.len(), 2);
/// # Ok::<(), swifi_vm::asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct CodeBuilder {
    code: Vec<u32>,
    data: Vec<u8>,
    labels: HashMap<String, LabelValue>,
    fixups: Vec<Fixup>,
    line: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LabelValue {
    Code(usize),
    Data(usize),
}

impl CodeBuilder {
    /// Empty builder.
    pub fn new() -> CodeBuilder {
        CodeBuilder::default()
    }

    /// Current instruction index (== address offset in words from
    /// [`CODE_BASE`]).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Guest address of instruction index `i`.
    pub fn addr_of(&self, i: usize) -> u32 {
        CODE_BASE + i as u32 * 4
    }

    /// Set the source line used for subsequent error reports.
    pub fn set_line(&mut self, line: usize) {
        self.line = line;
    }

    /// Append an encoded instruction; returns its instruction index.
    pub fn push(&mut self, i: Instr) -> usize {
        self.code.push(encode(i));
        self.code.len() - 1
    }

    /// Append a raw word (tests and deliberate illegal encodings).
    pub fn push_raw(&mut self, w: u32) -> usize {
        self.code.push(w);
        self.code.len() - 1
    }

    /// Bind `name` to the current code position.
    pub fn label(&mut self, name: impl Into<String>) {
        self.labels
            .insert(name.into(), LabelValue::Code(self.code.len()));
    }

    /// Bind `name` to the current data position.
    pub fn data_label(&mut self, name: impl Into<String>) {
        self.labels
            .insert(name.into(), LabelValue::Data(self.data.len()));
    }

    /// Append bytes to the data segment; returns their data offset.
    pub fn push_data(&mut self, bytes: &[u8]) -> usize {
        let at = self.data.len();
        self.data.extend_from_slice(bytes);
        at
    }

    /// Word-align the data segment.
    pub fn align_data(&mut self) {
        while !self.data.len().is_multiple_of(4) {
            self.data.push(0);
        }
    }

    /// Emit `b label` / `bl label` (fixed up at [`CodeBuilder::finish`]);
    /// returns the instruction index.
    pub fn branch_to(&mut self, label: impl Into<String>, link: bool) -> usize {
        let at = self.code.len();
        self.code.push(0);
        self.fixups.push(Fixup::Branch26 {
            at,
            label: label.into(),
            link,
            line: self.line,
        });
        at
    }

    /// Emit `bc crf.bit, expect, label`; returns the instruction index.
    pub fn cond_branch_to(
        &mut self,
        crf: u8,
        bit: CrBit,
        expect: bool,
        label: impl Into<String>,
    ) -> usize {
        let at = self.code.len();
        self.code.push(0);
        self.fixups.push(Fixup::Branch16 {
            at,
            label: label.into(),
            crf,
            bit,
            expect,
            line: self.line,
        });
        at
    }

    /// Emit a 2-word `la rd, label` sequence; returns the index of the
    /// first word.
    pub fn load_addr(&mut self, rd: u8, label: impl Into<String>) -> usize {
        let at = self.code.len();
        self.code.push(0);
        self.code.push(0);
        self.fixups.push(Fixup::Addr32 {
            at,
            rd,
            label: label.into(),
            line: self.line,
        });
        at
    }

    /// Emit a minimal `li rd, value` (1 word if `value` fits in a signed
    /// 16-bit immediate, else 2); returns the index of the first word.
    pub fn load_imm(&mut self, rd: u8, value: i32) -> usize {
        let at = self.code.len();
        if let Ok(imm) = i16::try_from(value) {
            self.push(Instr::Addi { rd, ra: 0, imm });
        } else {
            emit_imm32(&mut self.code, rd, value as u32);
        }
        at
    }

    /// Whether `name` has been bound.
    pub fn has_label(&self, name: &str) -> bool {
        self.labels.contains_key(name)
    }

    /// Instruction index a code label is bound to (`None` for unbound or
    /// data labels). Used by the MiniC compiler to compute the alternative
    /// branch targets stored in debug info.
    pub fn label_code_index(&self, name: &str) -> Option<usize> {
        match self.labels.get(name) {
            Some(LabelValue::Code(i)) => Some(*i),
            _ => None,
        }
    }

    /// Resolve all fixups and produce the final [`Image`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for references to labels that were never bound
    /// or branches whose displacement does not fit its field.
    pub fn finish(mut self) -> Result<Image, AsmError> {
        self.align_data();
        let code_len = self.code.len();
        let resolve = |labels: &HashMap<String, LabelValue>,
                       name: &str,
                       line: usize|
         -> Result<u32, AsmError> {
            match labels.get(name) {
                Some(LabelValue::Code(i)) => Ok(CODE_BASE + *i as u32 * 4),
                Some(LabelValue::Data(off)) => Ok(CODE_BASE + code_len as u32 * 4 + *off as u32),
                None => err(line, format!("undefined label `{name}`")),
            }
        };
        for fx in std::mem::take(&mut self.fixups) {
            match fx {
                Fixup::Branch26 {
                    at,
                    label,
                    link,
                    line,
                } => {
                    let target = resolve(&self.labels, &label, line)?;
                    let from = CODE_BASE + at as u32 * 4;
                    let off = (target as i64 - from as i64) / 4;
                    if !(-(1 << 25)..(1 << 25)).contains(&off) {
                        return err(line, "branch out of range");
                    }
                    let off = off as i32;
                    self.code[at] = encode(if link {
                        Instr::Bl { off }
                    } else {
                        Instr::B { off }
                    });
                }
                Fixup::Branch16 {
                    at,
                    label,
                    crf,
                    bit,
                    expect,
                    line,
                } => {
                    let target = resolve(&self.labels, &label, line)?;
                    let from = CODE_BASE + at as u32 * 4;
                    let off = (target as i64 - from as i64) / 4;
                    let off = i16::try_from(off).map_err(|_| AsmError {
                        line,
                        msg: "bc branch out of range".into(),
                    })?;
                    self.code[at] = encode(Instr::Bc {
                        crf,
                        bit,
                        expect,
                        off,
                    });
                }
                Fixup::Addr32 {
                    at,
                    rd,
                    label,
                    line,
                } => {
                    let target = resolve(&self.labels, &label, line)?;
                    let mut words = Vec::with_capacity(2);
                    emit_imm32(&mut words, rd, target);
                    debug_assert_eq!(words.len(), 2);
                    self.code[at] = words[0];
                    self.code[at + 1] = words[1];
                }
            }
        }
        Ok(Image {
            code: self.code,
            data: self.data,
            entry: CODE_BASE,
        })
    }
}

/// Emit a fixed 2-word sequence loading the 32-bit `value` into `rd`
/// (`addis` + `ori`).
fn emit_imm32(out: &mut Vec<u32>, rd: u8, value: u32) {
    let hi = (value >> 16) as i16;
    let lo = (value & 0xFFFF) as u16;
    out.push(encode(Instr::Addis { rd, ra: 0, imm: hi }));
    out.push(encode(Instr::Ori {
        rd,
        ra: rd,
        imm: lo,
    }));
}

/// Assemble a textual program into an [`Image`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors,
/// unknown mnemonics/labels, and out-of-range operands.
///
/// # Examples
///
/// ```
/// let image = swifi_vm::asm::assemble("addi r3, r0, 1\nhalt")?;
/// assert_eq!(image.code.len(), 2);
/// # Ok::<(), swifi_vm::asm::AsmError>(())
/// ```
pub fn assemble(src: &str) -> Result<Image, AsmError> {
    let mut b = CodeBuilder::new();
    let mut in_data = false;
    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = idx + 1;
        b.set_line(lineno);
        let mut line = raw_line;
        if let Some(p) = line.find([';', '#']) {
            line = &line[..p];
        }
        let mut line = line.trim();
        // Labels (possibly followed by an instruction/directive).
        while let Some(colon) = line.find(':') {
            let (name, rest) = line.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return err(lineno, format!("bad label `{name}`"));
            }
            if b.has_label(name) {
                return err(lineno, format!("duplicate label `{name}`"));
            }
            if in_data {
                b.data_label(name);
            } else {
                b.label(name);
            }
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if line == ".data" {
            in_data = true;
            continue;
        }
        if in_data {
            parse_data_directive(&mut b, line, lineno)?;
        } else {
            parse_instr(&mut b, line, lineno)?;
        }
    }
    b.finish()
}

fn parse_data_directive(b: &mut CodeBuilder, line: &str, lineno: usize) -> Result<(), AsmError> {
    let (dir, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    match dir {
        ".word" => {
            b.align_data();
            for part in rest.split(',') {
                let v = parse_int(part.trim(), lineno)?;
                b.push_data(&(v as u32).to_le_bytes());
            }
            Ok(())
        }
        ".byte" => {
            for part in rest.split(',') {
                let v = parse_int(part.trim(), lineno)?;
                b.push_data(&[(v as u32 & 0xFF) as u8]);
            }
            Ok(())
        }
        ".asciz" => {
            let s = rest.trim();
            if s.len() < 2 || !s.starts_with('"') || !s.ends_with('"') {
                return err(lineno, ".asciz needs a double-quoted string");
            }
            let mut bytes = unescape(&s[1..s.len() - 1], lineno)?;
            bytes.push(0);
            b.push_data(&bytes);
            Ok(())
        }
        ".space" => {
            let n = parse_int(rest.trim(), lineno)?;
            if n < 0 {
                return err(lineno, ".space needs a non-negative size");
            }
            b.push_data(&vec![0u8; n as usize]);
            Ok(())
        }
        _ => err(lineno, format!("unknown data directive `{dir}`")),
    }
}

fn unescape(s: &str, lineno: usize) -> Result<Vec<u8>, AsmError> {
    let mut out = Vec::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('"') => out.push(b'"'),
            other => return err(lineno, format!("bad escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

fn parse_int(s: &str, lineno: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else if let Some(hex) = s.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v)
    } else {
        s.parse::<i64>()
    };
    parsed.map_err(|_| AsmError {
        line: lineno,
        msg: format!("bad integer `{s}`"),
    })
}

fn parse_reg(s: &str, lineno: usize) -> Result<u8, AsmError> {
    let s = s.trim();
    let n = s
        .strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 32)
        .ok_or_else(|| AsmError {
            line: lineno,
            msg: format!("bad register `{s}`"),
        })?;
    Ok(n)
}

fn parse_crf(s: &str, lineno: usize) -> Result<u8, AsmError> {
    s.trim()
        .strip_prefix("cr")
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 8)
        .ok_or_else(|| AsmError {
            line: lineno,
            msg: format!("bad CR field `{s}`"),
        })
}

fn parse_i16(s: &str, lineno: usize) -> Result<i16, AsmError> {
    let v = parse_int(s, lineno)?;
    i16::try_from(v).map_err(|_| AsmError {
        line: lineno,
        msg: format!("immediate `{v}` out of range"),
    })
}

fn parse_u16(s: &str, lineno: usize) -> Result<u16, AsmError> {
    let v = parse_int(s, lineno)?;
    if (0..=0xFFFF).contains(&v) {
        Ok(v as u16)
    } else {
        err(
            lineno,
            format!("immediate `{v}` out of range for unsigned 16-bit"),
        )
    }
}

/// Parse `d(rA)` memory operand syntax.
fn parse_mem(s: &str, lineno: usize) -> Result<(i16, u8), AsmError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| AsmError {
        line: lineno,
        msg: format!("expected `disp(rN)` operand, got `{s}`"),
    })?;
    if !s.ends_with(')') {
        return err(lineno, format!("expected `disp(rN)` operand, got `{s}`"));
    }
    let d = if s[..open].trim().is_empty() {
        0
    } else {
        parse_i16(&s[..open], lineno)?
    };
    let ra = parse_reg(&s[open + 1..s.len() - 1], lineno)?;
    Ok((d, ra))
}

fn is_label_token(s: &str) -> bool {
    s.chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn parse_instr(b: &mut CodeBuilder, line: &str, lineno: usize) -> Result<(), AsmError> {
    let (mn, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let ops: Vec<&str> = if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let argc = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                lineno,
                format!("`{mn}` expects {n} operands, got {}", ops.len()),
            )
        }
    };
    match mn {
        "addi" | "addis" | "andi" | "ori" | "xori" => {
            argc(3)?;
            let rd = parse_reg(ops[0], lineno)?;
            let ra = parse_reg(ops[1], lineno)?;
            let i = match mn {
                "addi" => Instr::Addi {
                    rd,
                    ra,
                    imm: parse_i16(ops[2], lineno)?,
                },
                "addis" => Instr::Addis {
                    rd,
                    ra,
                    imm: parse_i16(ops[2], lineno)?,
                },
                "andi" => Instr::Andi {
                    rd,
                    ra,
                    imm: parse_u16(ops[2], lineno)?,
                },
                "ori" => Instr::Ori {
                    rd,
                    ra,
                    imm: parse_u16(ops[2], lineno)?,
                },
                _ => Instr::Xori {
                    rd,
                    ra,
                    imm: parse_u16(ops[2], lineno)?,
                },
            };
            b.push(i);
        }
        "cmpi" => {
            argc(3)?;
            b.push(Instr::Cmpi {
                crf: parse_crf(ops[0], lineno)?,
                ra: parse_reg(ops[1], lineno)?,
                imm: parse_i16(ops[2], lineno)?,
            });
        }
        "cmp" => {
            argc(3)?;
            b.push(Instr::Cmp {
                crf: parse_crf(ops[0], lineno)?,
                ra: parse_reg(ops[1], lineno)?,
                rb: parse_reg(ops[2], lineno)?,
            });
        }
        "add" | "sub" | "mullw" | "divw" | "divwu" | "remw" | "and" | "or" | "xor" | "nand"
        | "nor" | "slw" | "srw" | "sraw" => {
            argc(3)?;
            let op = match mn {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "mullw" => AluOp::Mullw,
                "divw" => AluOp::Divw,
                "divwu" => AluOp::Divwu,
                "remw" => AluOp::Remw,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "nand" => AluOp::Nand,
                "nor" => AluOp::Nor,
                "slw" => AluOp::Slw,
                "srw" => AluOp::Srw,
                _ => AluOp::Sraw,
            };
            b.push(Instr::Alu {
                op,
                rd: parse_reg(ops[0], lineno)?,
                ra: parse_reg(ops[1], lineno)?,
                rb: parse_reg(ops[2], lineno)?,
            });
        }
        "neg" | "not" => {
            if ops.len() != 2 && ops.len() != 3 {
                return err(
                    lineno,
                    format!("`{mn}` expects 2 or 3 operands, got {}", ops.len()),
                );
            }
            b.push(Instr::Alu {
                op: if mn == "neg" { AluOp::Neg } else { AluOp::Not },
                rd: parse_reg(ops[0], lineno)?,
                ra: parse_reg(ops[1], lineno)?,
                rb: if ops.len() == 3 {
                    parse_reg(ops[2], lineno)?
                } else {
                    0
                },
            });
        }
        "lwz" | "lbz" | "stw" | "stb" => {
            argc(2)?;
            let r = parse_reg(ops[0], lineno)?;
            let (d, ra) = parse_mem(ops[1], lineno)?;
            let i = match mn {
                "lwz" => Instr::Lwz { rd: r, ra, d },
                "lbz" => Instr::Lbz { rd: r, ra, d },
                "stw" => Instr::Stw { rs: r, ra, d },
                _ => Instr::Stb { rs: r, ra, d },
            };
            b.push(i);
        }
        "b" | "bl" => {
            argc(1)?;
            if is_label_token(ops[0]) {
                b.branch_to(ops[0], mn == "bl");
            } else {
                let off = parse_int(ops[0], lineno)? as i32;
                b.push(if mn == "b" {
                    Instr::B { off }
                } else {
                    Instr::Bl { off }
                });
            }
        }
        "bc" => {
            argc(3)?;
            let cond = ops[0];
            let dot = cond.find('.').ok_or_else(|| AsmError {
                line: lineno,
                msg: format!("bc condition must be crN.bit, got `{cond}`"),
            })?;
            let crf = parse_crf(&cond[..dot], lineno)?;
            let bit = match &cond[dot + 1..] {
                "lt" => CrBit::Lt,
                "gt" => CrBit::Gt,
                "eq" => CrBit::Eq,
                "so" => CrBit::So,
                other => return err(lineno, format!("bad CR bit `{other}`")),
            };
            let expect = match ops[1] {
                "0" => false,
                "1" => true,
                other => return err(lineno, format!("bc expect must be 0 or 1, got `{other}`")),
            };
            if is_label_token(ops[2]) {
                b.cond_branch_to(crf, bit, expect, ops[2]);
            } else {
                let off = parse_i16(ops[2], lineno)?;
                b.push(Instr::Bc {
                    crf,
                    bit,
                    expect,
                    off,
                });
            }
        }
        "blr" => {
            argc(0)?;
            b.push(Instr::Blr);
        }
        "mflr" => {
            argc(1)?;
            b.push(Instr::Mflr {
                rd: parse_reg(ops[0], lineno)?,
            });
        }
        "mtlr" => {
            argc(1)?;
            b.push(Instr::Mtlr {
                ra: parse_reg(ops[0], lineno)?,
            });
        }
        "sc" => {
            argc(1)?;
            let call = match ops[0] {
                "exit" => Syscall::Exit,
                "print_int" => Syscall::PrintInt,
                "print_char" => Syscall::PrintChar,
                "print_str" => Syscall::PrintStr,
                "read_int" => Syscall::ReadInt,
                "read_byte" => Syscall::ReadByte,
                "malloc" => Syscall::Malloc,
                "free" => Syscall::Free,
                "core_id" => Syscall::CoreId,
                "num_cores" => Syscall::NumCores,
                "barrier" => Syscall::Barrier,
                other => return err(lineno, format!("unknown syscall `{other}`")),
            };
            b.push(Instr::Sc { call });
        }
        "halt" => {
            argc(0)?;
            b.push(Instr::Halt);
        }
        "nop" => {
            argc(0)?;
            b.push_raw(NOP);
        }
        "li" => {
            argc(2)?;
            let rd = parse_reg(ops[0], lineno)?;
            let v = parse_int(ops[1], lineno)?;
            let v = i32::try_from(v).map_err(|_| AsmError {
                line: lineno,
                msg: format!("li value `{v}` out of range"),
            })?;
            b.load_imm(rd, v);
        }
        "la" => {
            argc(2)?;
            let rd = parse_reg(ops[0], lineno)?;
            if !is_label_token(ops[1]) {
                return err(lineno, "la needs a label operand");
            }
            b.load_addr(rd, ops[1]);
        }
        "mr" => {
            argc(2)?;
            b.push(Instr::Addi {
                rd: parse_reg(ops[0], lineno)?,
                ra: parse_reg(ops[1], lineno)?,
                imm: 0,
            });
        }
        other => return err(lineno, format!("unknown mnemonic `{other}`")),
    }
    Ok(())
}

/// Disassemble an image's code segment to one string per instruction.
///
/// Undecodable words render as `.word 0x…`, so disassembly never fails —
/// useful when inspecting injected corruption.
pub fn disassemble(image: &Image) -> Vec<String> {
    image
        .code
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let addr = image.addr_of(i);
            match crate::isa::decode(w) {
                Ok(ins) => format!("{addr:#010x}: {ins}"),
                Err(_) => format!("{addr:#010x}: .word {w:#010x}"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspect::Noop;
    use crate::machine::{Machine, MachineConfig, RunOutcome};

    fn run(img: &Image) -> RunOutcome {
        let mut m = Machine::new(MachineConfig::default());
        m.load(img);
        m.run(&mut Noop)
    }

    #[test]
    fn labels_forward_and_backward() {
        let img = assemble(
            "start:
                li r5, 3
             loop:
                cmpi cr0, r5, 0
                bc cr0.eq, 1, done
                addi r5, r5, -1
                b loop
             done:
                addi r3, r0, 0
                halt",
        )
        .unwrap();
        assert!(run(&img).is_normal());
    }

    #[test]
    fn li_small_is_one_word() {
        let img = assemble("li r3, 5\nhalt").unwrap();
        assert_eq!(img.code.len(), 2);
    }

    #[test]
    fn li_large_is_two_words() {
        let img = assemble("li r3, 100000\nsc print_int\nli r3, 0\nhalt").unwrap();
        assert_eq!(img.code.len(), 5);
        assert_eq!(run(&img).output(), b"100000");
    }

    #[test]
    fn li_negative_large() {
        let img = assemble("li r3, -100000\nsc print_int\nli r3, 0\nhalt").unwrap();
        assert_eq!(run(&img).output(), b"-100000");
    }

    #[test]
    fn data_words_and_la() {
        let img = assemble(
            "la r4, tbl
             lwz r3, 4(r4)
             sc print_int
             li r3, 0
             halt
             .data
             tbl: .word 10, 20, 30",
        )
        .unwrap();
        assert_eq!(run(&img).output(), b"20");
    }

    #[test]
    fn asciz_and_print_str() {
        let img = assemble(
            "la r3, msg
             sc print_str
             li r3, 0
             halt
             .data
             msg: .asciz \"hi\\n\"",
        )
        .unwrap();
        assert_eq!(run(&img).output(), b"hi\n");
    }

    #[test]
    fn space_reserves_zeroed_bytes() {
        let img = assemble(
            "la r4, buf
             lbz r3, 7(r4)
             sc print_int
             li r3, 0
             halt
             .data
             buf: .space 8",
        )
        .unwrap();
        assert_eq!(run(&img).output(), b"0");
    }

    #[test]
    fn undefined_label_errors() {
        let e = assemble("b nowhere\nhalt").unwrap_err();
        assert!(e.msg.contains("undefined label"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn duplicate_label_errors() {
        let e = assemble("x:\nx:\nhalt").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn unknown_mnemonic_errors() {
        let e = assemble("frobnicate r1").unwrap_err();
        assert!(e.msg.contains("unknown mnemonic"));
    }

    #[test]
    fn bad_register_errors() {
        assert!(assemble("addi r32, r0, 1").is_err());
        assert!(assemble("addi rx, r0, 1").is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let img = assemble("; leading comment\nhalt ; trailing\n# hash comment").unwrap();
        assert_eq!(img.code.len(), 1);
    }

    #[test]
    fn mem_operand_parses() {
        let img = assemble("lwz r3, -8(r1)\nstw r3, (r1)\nhalt").unwrap();
        assert_eq!(img.code.len(), 3);
    }

    #[test]
    fn mr_and_nop() {
        let img = assemble("li r5, 4\nmr r3, r5\nnop\nsc print_int\nli r3, 0\nhalt").unwrap();
        assert_eq!(run(&img).output(), b"4");
    }

    #[test]
    fn disassemble_round_trips_through_assembler() {
        let src = "addi r3, r0, 7\ncmp cr1, r3, r4\nbc cr1.gt, 1, 2\nblr\nhalt";
        let img = assemble(src).unwrap();
        let dis = disassemble(&img);
        assert_eq!(dis.len(), 5);
        // Strip the address prefix and re-assemble.
        let src2: String = dis
            .iter()
            .map(|l| l.split(": ").nth(1).unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        let img2 = assemble(&src2).unwrap();
        assert_eq!(img.code, img2.code);
    }

    #[test]
    fn numeric_bc_offset_still_works() {
        let img = assemble("cmpi cr0, r0, 0\nbc cr0.eq, 1, 2\nhalt\nli r3, 0\nhalt").unwrap();
        assert_eq!(img.code.len(), 5);
    }
}
