//! Bounded execution tracing — the monitoring side of the Xception model.
//!
//! Xception "monitors the activation of the faults and their impact on the
//! target system behavior". [`Tracer`] records a bounded window of
//! architectural events (fetches, loads, stores, register writes) so that
//! an experiment can show *how* an injected error propagated — e.g. the
//! first wild store after a corrupted pointer assignment.

use std::collections::VecDeque;

use crate::inspect::Inspector;

/// One recorded architectural event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Instruction word fetched.
    Fetch {
        /// Core that fetched.
        core: usize,
        /// Address fetched from.
        pc: u32,
        /// The (possibly already corrupted) word.
        word: u32,
    },
    /// Word/byte loaded from memory.
    Load {
        /// Executing core.
        core: usize,
        /// Instruction address.
        pc: u32,
        /// Effective address.
        addr: u32,
        /// Loaded value.
        value: u32,
    },
    /// Word/byte stored to memory.
    Store {
        /// Executing core.
        core: usize,
        /// Instruction address.
        pc: u32,
        /// Effective address.
        addr: u32,
        /// Stored value.
        value: u32,
    },
    /// Register written back.
    RegWrite {
        /// Executing core.
        core: usize,
        /// Instruction address.
        pc: u32,
        /// Register number.
        reg: u8,
        /// New value.
        value: u32,
    },
}

impl Event {
    /// The instruction address the event belongs to.
    pub fn pc(&self) -> u32 {
        match *self {
            Event::Fetch { pc, .. }
            | Event::Load { pc, .. }
            | Event::Store { pc, .. }
            | Event::RegWrite { pc, .. } => pc,
        }
    }
}

/// Event classes a [`Tracer`] can record, as a simple filter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Record instruction fetches (very high volume).
    pub fetches: bool,
    /// Record loads.
    pub loads: bool,
    /// Record stores.
    pub stores: bool,
    /// Record register write-backs (high volume).
    pub reg_writes: bool,
}

impl TraceFilter {
    /// Loads and stores only — the usual propagation-analysis filter.
    pub fn memory_only() -> TraceFilter {
        TraceFilter {
            fetches: false,
            loads: true,
            stores: true,
            reg_writes: false,
        }
    }

    /// Everything (use a small capacity).
    pub fn everything() -> TraceFilter {
        TraceFilter {
            fetches: true,
            loads: true,
            stores: true,
            reg_writes: true,
        }
    }
}

/// An [`Inspector`] that keeps the last `capacity` matching events.
///
/// The window is bounded so that tracing a hanging run cannot exhaust host
/// memory; older events are dropped (the count of drops is kept).
#[derive(Debug, Clone)]
pub struct Tracer {
    filter: TraceFilter,
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl Tracer {
    /// Create a tracer keeping the last `capacity` events matching
    /// `filter`.
    pub fn new(filter: TraceFilter, capacity: usize) -> Tracer {
        Tracer {
            filter,
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, e: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(e);
    }

    /// The recorded window, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events dropped from the front of the window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// First recorded store to an address outside `[lo, hi)` — the classic
    /// "where did the wild write go" question after pointer corruption.
    pub fn first_store_outside(&self, lo: u32, hi: u32) -> Option<Event> {
        self.events
            .iter()
            .find(|e| matches!(e, Event::Store { addr, .. } if *addr < lo || *addr >= hi))
            .copied()
    }
}

impl Inspector for Tracer {
    fn on_fetch(&mut self, core: usize, pc: u32, word: &mut u32) {
        if self.filter.fetches {
            self.push(Event::Fetch {
                core,
                pc,
                word: *word,
            });
        }
    }

    fn on_load_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        if self.filter.loads {
            self.push(Event::Load {
                core,
                pc,
                addr,
                value: *value,
            });
        }
    }

    fn on_store_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        if self.filter.stores {
            self.push(Event::Store {
                core,
                pc,
                addr,
                value: *value,
            });
        }
    }

    fn on_reg_write(&mut self, core: usize, pc: u32, reg: u8, value: &mut u32) {
        if self.filter.reg_writes {
            self.push(Event::RegWrite {
                core,
                pc,
                reg,
                value: *value,
            });
        }
    }
}

/// Compose two inspectors: both observe every event, in order. The primary
/// runs first, so a [`Tracer`] as `secondary` sees values *after* an
/// injector's corruption — exactly what propagation analysis wants.
#[derive(Debug)]
pub struct Pair<'a, A, B> {
    /// Runs first (e.g. an injector).
    pub primary: &'a mut A,
    /// Runs second (e.g. a tracer).
    pub secondary: &'a mut B,
}

impl<A: Inspector, B: Inspector> Inspector for Pair<'_, A, B> {
    fn on_fetch(&mut self, core: usize, pc: u32, word: &mut u32) {
        self.primary.on_fetch(core, pc, word);
        self.secondary.on_fetch(core, pc, word);
    }

    fn on_load_addr(&mut self, core: usize, pc: u32, addr: &mut u32) {
        self.primary.on_load_addr(core, pc, addr);
        self.secondary.on_load_addr(core, pc, addr);
    }

    fn on_load_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        self.primary.on_load_value(core, pc, addr, value);
        self.secondary.on_load_value(core, pc, addr, value);
    }

    fn on_store_addr(&mut self, core: usize, pc: u32, addr: &mut u32) {
        self.primary.on_store_addr(core, pc, addr);
        self.secondary.on_store_addr(core, pc, addr);
    }

    fn on_store_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        self.primary.on_store_value(core, pc, addr, value);
        self.secondary.on_store_value(core, pc, addr, value);
    }

    fn on_reg_write(&mut self, core: usize, pc: u32, reg: u8, value: &mut u32) {
        self.primary.on_reg_write(core, pc, reg, value);
        self.secondary.on_reg_write(core, pc, reg, value);
    }

    fn on_retire(&mut self, core: usize, pc: u32) {
        self.primary.on_retire(core, pc);
        self.secondary.on_retire(core, pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::{Machine, MachineConfig};

    const SRC: &str = "
        li r5, 7
        la r4, slot
        stw r5, 0(r4)
        lwz r6, 0(r4)
        li r3, 0
        halt
        .data
        slot: .word 0";

    #[test]
    fn records_loads_and_stores() {
        let image = assemble(SRC).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut t = Tracer::new(TraceFilter::memory_only(), 16);
        assert!(m.run(&mut t).is_normal());
        let events: Vec<&Event> = t.events().collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Store { value: 7, .. }));
        assert!(matches!(events[1], Event::Load { value: 7, .. }));
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn window_is_bounded() {
        let image = assemble(
            "li r5, 100
             la r4, slot
             loop:
             stw r5, 0(r4)
             addi r5, r5, -1
             cmpi cr0, r5, 0
             bc cr0.gt, 1, loop
             li r3, 0
             halt
             .data
             slot: .word 0",
        )
        .unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut t = Tracer::new(TraceFilter::memory_only(), 10);
        assert!(m.run(&mut t).is_normal());
        assert_eq!(t.events().count(), 10);
        assert_eq!(t.dropped(), 90);
        // The window holds the *last* stores: values 10..1.
        assert!(matches!(
            t.events().next(),
            Some(Event::Store { value: 10, .. })
        ));
    }

    #[test]
    fn pair_composes_injector_like_mutation_with_tracing() {
        struct Bump;
        impl Inspector for Bump {
            fn on_store_value(&mut self, _c: usize, _pc: u32, _a: u32, value: &mut u32) {
                *value += 1;
            }
        }
        let image = assemble(SRC).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut bump = Bump;
        let mut tracer = Tracer::new(TraceFilter::memory_only(), 8);
        let mut pair = Pair {
            primary: &mut bump,
            secondary: &mut tracer,
        };
        assert!(m.run(&mut pair).is_normal());
        // The tracer observed the corrupted value, not the original.
        assert!(matches!(
            tracer.events().next(),
            Some(Event::Store { value: 8, .. })
        ));
    }

    #[test]
    fn wild_store_detection() {
        let mut t = Tracer::new(TraceFilter::memory_only(), 8);
        t.push(Event::Store {
            core: 0,
            pc: 0x100,
            addr: 0x5000,
            value: 1,
        });
        t.push(Event::Store {
            core: 0,
            pc: 0x104,
            addr: 0xFFFF_0000,
            value: 2,
        });
        let wild = t.first_store_outside(0x1000, 0x10000).unwrap();
        assert!(matches!(
            wild,
            Event::Store {
                addr: 0xFFFF_0000,
                ..
            }
        ));
        assert_eq!(wild.pc(), 0x104);
    }
}
