//! The P601-lite instruction set.
//!
//! P601-lite is a fixed-width 32-bit RISC ISA loosely modelled on the
//! PowerPC 601, the processor targeted by the Xception fault injector in the
//! reproduced paper. The modelling goal is *not* binary compatibility but
//! architectural-state compatibility: the same fault surface (instruction
//! words fetched from memory, operand loads/stores on a data bus, general
//! purpose registers, condition register fields) that Xception corrupts on
//! the real 601 exists here with the same shape.
//!
//! Encoding: the top 6 bits of every word hold the primary opcode. The
//! all-zero word is deliberately an illegal instruction so that jumps into
//! zeroed memory trap instead of silently executing.
//!
//! # Examples
//!
//! ```
//! use swifi_vm::isa::{Instr, decode, encode};
//!
//! let i = Instr::Addi { rd: 3, ra: 0, imm: -1 };
//! let w = encode(i);
//! assert_eq!(decode(w), Ok(i));
//! ```

use std::fmt;

/// A condition-register bit within a 4-bit CR field.
///
/// `cmp`/`cmpi` set `Lt`, `Gt` and `Eq` according to the signed comparison;
/// `So` is a sticky summary-overflow bit that this implementation keeps
/// cleared (it exists so that single-bit corruption of a `bc` word can
/// retarget a branch onto a never-set bit, as on the real machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CrBit {
    /// Less-than (bit 0 of the field).
    Lt,
    /// Greater-than (bit 1).
    Gt,
    /// Equal (bit 2).
    Eq,
    /// Summary overflow (bit 3); never set by `cmp` here.
    So,
}

impl CrBit {
    /// Bit index within the CR field (0..=3).
    pub fn index(self) -> u32 {
        match self {
            CrBit::Lt => 0,
            CrBit::Gt => 1,
            CrBit::Eq => 2,
            CrBit::So => 3,
        }
    }

    /// Inverse of [`CrBit::index`].
    ///
    /// Returns `None` for out-of-range values.
    pub fn from_index(i: u32) -> Option<CrBit> {
        match i {
            0 => Some(CrBit::Lt),
            1 => Some(CrBit::Gt),
            2 => Some(CrBit::Eq),
            3 => Some(CrBit::So),
            _ => None,
        }
    }
}

impl fmt::Display for CrBit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrBit::Lt => "lt",
            CrBit::Gt => "gt",
            CrBit::Eq => "eq",
            CrBit::So => "so",
        };
        f.write_str(s)
    }
}

/// Register-register ALU operations (secondary opcode of [`Instr::Alu`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Low 32 bits of the signed product.
    Mullw,
    /// Signed division; division by zero traps.
    Divw,
    /// Unsigned division; division by zero traps.
    Divwu,
    /// Signed remainder; division by zero traps.
    Remw,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NAND.
    Nand,
    /// Bitwise NOR.
    Nor,
    /// Logical shift left by `rb & 31`.
    Slw,
    /// Logical shift right by `rb & 31`.
    Srw,
    /// Arithmetic shift right by `rb & 31`.
    Sraw,
    /// Two's-complement negation of `ra` (`rb` ignored).
    Neg,
    /// Bitwise complement of `ra` (`rb` ignored).
    Not,
}

impl AluOp {
    /// Secondary-opcode encoding (low 11 bits of the instruction word).
    pub fn code(self) -> u32 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mullw => 2,
            AluOp::Divw => 3,
            AluOp::Divwu => 4,
            AluOp::Remw => 5,
            AluOp::And => 6,
            AluOp::Or => 7,
            AluOp::Xor => 8,
            AluOp::Nand => 9,
            AluOp::Nor => 10,
            AluOp::Slw => 11,
            AluOp::Srw => 12,
            AluOp::Sraw => 13,
            AluOp::Neg => 14,
            AluOp::Not => 15,
        }
    }

    /// Inverse of [`AluOp::code`].
    pub fn from_code(c: u32) -> Option<AluOp> {
        Some(match c {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mullw,
            3 => AluOp::Divw,
            4 => AluOp::Divwu,
            5 => AluOp::Remw,
            6 => AluOp::And,
            7 => AluOp::Or,
            8 => AluOp::Xor,
            9 => AluOp::Nand,
            10 => AluOp::Nor,
            11 => AluOp::Slw,
            12 => AluOp::Srw,
            13 => AluOp::Sraw,
            14 => AluOp::Neg,
            15 => AluOp::Not,
            _ => return None,
        })
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mullw => "mullw",
            AluOp::Divw => "divw",
            AluOp::Divwu => "divwu",
            AluOp::Remw => "remw",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nand => "nand",
            AluOp::Nor => "nor",
            AluOp::Slw => "slw",
            AluOp::Srw => "srw",
            AluOp::Sraw => "sraw",
            AluOp::Neg => "neg",
            AluOp::Not => "not",
        }
    }
}

/// System-call numbers carried in the immediate field of [`Instr::Sc`].
///
/// Arguments are passed in `r3..=r6`, the result (if any) is returned in
/// `r3`, following the convention of the Parix-like runtime described in
/// the paper's experimental setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// Terminate the calling core with exit code `r3`.
    Exit,
    /// Print `r3` as a signed decimal integer to the output stream.
    PrintInt,
    /// Print the low byte of `r3` as a character.
    PrintChar,
    /// Print the NUL-terminated string at guest address `r3`.
    PrintStr,
    /// Read the next integer from the input tape into `r3` (0 at EOF,
    /// with `r4` set to 1).
    ReadInt,
    /// Read the next raw byte from the input tape into `r3` (-1 at EOF).
    ReadByte,
    /// Allocate `r3` bytes from the guest heap; pointer (or 0) in `r3`.
    Malloc,
    /// Release the heap block at `r3`; invalid pointers trap `HeapFault`.
    Free,
    /// Identifier of the calling core in `r3`.
    CoreId,
    /// Number of cores of the machine in `r3`.
    NumCores,
    /// Block until every live core has reached a barrier.
    Barrier,
}

impl Syscall {
    /// Immediate-field encoding.
    pub fn code(self) -> u32 {
        match self {
            Syscall::Exit => 0,
            Syscall::PrintInt => 1,
            Syscall::PrintChar => 2,
            Syscall::PrintStr => 3,
            Syscall::ReadInt => 4,
            Syscall::ReadByte => 5,
            Syscall::Malloc => 6,
            Syscall::Free => 7,
            Syscall::CoreId => 8,
            Syscall::NumCores => 9,
            Syscall::Barrier => 10,
        }
    }

    /// Inverse of [`Syscall::code`].
    pub fn from_code(c: u32) -> Option<Syscall> {
        Some(match c {
            0 => Syscall::Exit,
            1 => Syscall::PrintInt,
            2 => Syscall::PrintChar,
            3 => Syscall::PrintStr,
            4 => Syscall::ReadInt,
            5 => Syscall::ReadByte,
            6 => Syscall::Malloc,
            7 => Syscall::Free,
            8 => Syscall::CoreId,
            9 => Syscall::NumCores,
            10 => Syscall::Barrier,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Syscall::Exit => "exit",
            Syscall::PrintInt => "print_int",
            Syscall::PrintChar => "print_char",
            Syscall::PrintStr => "print_str",
            Syscall::ReadInt => "read_int",
            Syscall::ReadByte => "read_byte",
            Syscall::Malloc => "malloc",
            Syscall::Free => "free",
            Syscall::CoreId => "core_id",
            Syscall::NumCores => "num_cores",
            Syscall::Barrier => "barrier",
        }
    }
}

/// A decoded P601-lite instruction.
///
/// All branch displacements are in *words* relative to the address of the
/// branch instruction itself (PC-relative), so relocating a block of code
/// does not change intra-block branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field names (rd/ra/rb/imm/d/off) follow PowerPC conventions
pub enum Instr {
    /// `rd <- ra + sign_extend(imm)`. With `ra == 0` reads register r0
    /// normally (r0 is a real register here, unlike PowerPC's addi quirk).
    Addi { rd: u8, ra: u8, imm: i16 },
    /// `rd <- ra + (imm << 16)`.
    Addis { rd: u8, ra: u8, imm: i16 },
    /// `rd <- ra & zero_extend(imm)`.
    Andi { rd: u8, ra: u8, imm: u16 },
    /// `rd <- ra | zero_extend(imm)`.
    Ori { rd: u8, ra: u8, imm: u16 },
    /// `rd <- ra ^ zero_extend(imm)`.
    Xori { rd: u8, ra: u8, imm: u16 },
    /// Signed compare of `ra` against the immediate, writing CR field `crf`.
    Cmpi { crf: u8, ra: u8, imm: i16 },
    /// Signed compare of `ra` against `rb`, writing CR field `crf`.
    Cmp { crf: u8, ra: u8, rb: u8 },
    /// Register-register ALU operation.
    Alu { op: AluOp, rd: u8, ra: u8, rb: u8 },
    /// Load word: `rd <- mem32[ra + d]`.
    Lwz { rd: u8, ra: u8, d: i16 },
    /// Store word: `mem32[ra + d] <- rs`.
    Stw { rs: u8, ra: u8, d: i16 },
    /// Load zero-extended byte.
    Lbz { rd: u8, ra: u8, d: i16 },
    /// Store byte.
    Stb { rs: u8, ra: u8, d: i16 },
    /// Unconditional PC-relative branch (`off` in words, ±2^25).
    B { off: i32 },
    /// Branch and link: as [`Instr::B`] but saves the return address in LR.
    Bl { off: i32 },
    /// Conditional branch: taken when bit `bit` of CR field `crf` equals
    /// `expect`.
    Bc {
        crf: u8,
        bit: CrBit,
        expect: bool,
        off: i16,
    },
    /// Branch to LR (function return).
    Blr,
    /// Move from link register: `rd <- LR`.
    Mflr { rd: u8 },
    /// Move to link register: `LR <- ra`.
    Mtlr { ra: u8 },
    /// System call; see [`Syscall`].
    Sc { call: Syscall },
    /// Stop the calling core with exit code `r3`.
    Halt,
}

/// Primary opcodes (top 6 bits).
mod op {
    pub const ADDI: u32 = 0x01;
    pub const ADDIS: u32 = 0x02;
    pub const ANDI: u32 = 0x04;
    pub const ORI: u32 = 0x05;
    pub const XORI: u32 = 0x06;
    pub const CMPI: u32 = 0x07;
    pub const LWZ: u32 = 0x08;
    pub const STW: u32 = 0x09;
    pub const LBZ: u32 = 0x0A;
    pub const STB: u32 = 0x0B;
    pub const B: u32 = 0x0C;
    pub const BL: u32 = 0x0D;
    pub const BC: u32 = 0x0E;
    pub const ALU: u32 = 0x0F;
    pub const CMP: u32 = 0x10;
    pub const BLR: u32 = 0x11;
    pub const SC: u32 = 0x12;
    pub const HALT: u32 = 0x13;
    pub const MFLR: u32 = 0x14;
    pub const MTLR: u32 = 0x15;
}

/// Error returned by [`decode`] for words that are not valid instructions.
///
/// Fetching such a word at runtime raises the `IllegalInstruction` trap,
/// one of the crash failure modes of the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn field_rd(w: u32) -> u8 {
    ((w >> 21) & 0x1F) as u8
}
#[inline]
fn field_ra(w: u32) -> u8 {
    ((w >> 16) & 0x1F) as u8
}
#[inline]
fn field_rb(w: u32) -> u8 {
    ((w >> 11) & 0x1F) as u8
}
#[inline]
fn field_imm(w: u32) -> u16 {
    (w & 0xFFFF) as u16
}

/// Encode an instruction into its 32-bit word.
///
/// `encode` and [`decode`] are exact inverses for every valid instruction;
/// this is covered by a property test.
pub fn encode(i: Instr) -> u32 {
    fn itype(opc: u32, rd: u8, ra: u8, imm: u16) -> u32 {
        (opc << 26) | ((rd as u32) << 21) | ((ra as u32) << 16) | imm as u32
    }
    match i {
        Instr::Addi { rd, ra, imm } => itype(op::ADDI, rd, ra, imm as u16),
        Instr::Addis { rd, ra, imm } => itype(op::ADDIS, rd, ra, imm as u16),
        Instr::Andi { rd, ra, imm } => itype(op::ANDI, rd, ra, imm),
        Instr::Ori { rd, ra, imm } => itype(op::ORI, rd, ra, imm),
        Instr::Xori { rd, ra, imm } => itype(op::XORI, rd, ra, imm),
        Instr::Cmpi { crf, ra, imm } => itype(op::CMPI, crf & 0x7, ra, imm as u16),
        Instr::Lwz { rd, ra, d } => itype(op::LWZ, rd, ra, d as u16),
        Instr::Stw { rs, ra, d } => itype(op::STW, rs, ra, d as u16),
        Instr::Lbz { rd, ra, d } => itype(op::LBZ, rd, ra, d as u16),
        Instr::Stb { rs, ra, d } => itype(op::STB, rs, ra, d as u16),
        Instr::B { off } => (op::B << 26) | ((off as u32) & 0x03FF_FFFF),
        Instr::Bl { off } => (op::BL << 26) | ((off as u32) & 0x03FF_FFFF),
        Instr::Bc {
            crf,
            bit,
            expect,
            off,
        } => {
            let rd = ((crf as u32 & 0x7) << 2) | bit.index();
            let ra = expect as u32;
            (op::BC << 26) | (rd << 21) | (ra << 16) | (off as u16) as u32
        }
        Instr::Alu { op: a, rd, ra, rb } => {
            (op::ALU << 26)
                | ((rd as u32) << 21)
                | ((ra as u32) << 16)
                | ((rb as u32) << 11)
                | a.code()
        }
        Instr::Cmp { crf, ra, rb } => {
            (op::CMP << 26) | ((crf as u32 & 0x7) << 21) | ((ra as u32) << 16) | ((rb as u32) << 11)
        }
        Instr::Blr => op::BLR << 26,
        Instr::Mflr { rd } => (op::MFLR << 26) | ((rd as u32) << 21),
        Instr::Mtlr { ra } => (op::MTLR << 26) | ((ra as u32) << 16),
        Instr::Sc { call } => (op::SC << 26) | call.code(),
        Instr::Halt => op::HALT << 26,
    }
}

/// Decode a 32-bit word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word does not encode a valid instruction
/// (unknown primary/secondary opcode or syscall number, or non-zero bits in
/// fields an instruction does not use).
pub fn decode(w: u32) -> Result<Instr, DecodeError> {
    let opc = w >> 26;
    let err = Err(DecodeError { word: w });
    let i = match opc {
        op::ADDI => Instr::Addi {
            rd: field_rd(w),
            ra: field_ra(w),
            imm: field_imm(w) as i16,
        },
        op::ADDIS => Instr::Addis {
            rd: field_rd(w),
            ra: field_ra(w),
            imm: field_imm(w) as i16,
        },
        op::ANDI => Instr::Andi {
            rd: field_rd(w),
            ra: field_ra(w),
            imm: field_imm(w),
        },
        op::ORI => Instr::Ori {
            rd: field_rd(w),
            ra: field_ra(w),
            imm: field_imm(w),
        },
        op::XORI => Instr::Xori {
            rd: field_rd(w),
            ra: field_ra(w),
            imm: field_imm(w),
        },
        op::CMPI => {
            if field_rd(w) > 7 {
                return err;
            }
            Instr::Cmpi {
                crf: field_rd(w),
                ra: field_ra(w),
                imm: field_imm(w) as i16,
            }
        }
        op::LWZ => Instr::Lwz {
            rd: field_rd(w),
            ra: field_ra(w),
            d: field_imm(w) as i16,
        },
        op::STW => Instr::Stw {
            rs: field_rd(w),
            ra: field_ra(w),
            d: field_imm(w) as i16,
        },
        op::LBZ => Instr::Lbz {
            rd: field_rd(w),
            ra: field_ra(w),
            d: field_imm(w) as i16,
        },
        op::STB => Instr::Stb {
            rs: field_rd(w),
            ra: field_ra(w),
            d: field_imm(w) as i16,
        },
        op::B | op::BL => {
            let raw = w & 0x03FF_FFFF;
            // Sign-extend the 26-bit field.
            let off = ((raw << 6) as i32) >> 6;
            if opc == op::B {
                Instr::B { off }
            } else {
                Instr::Bl { off }
            }
        }
        op::BC => {
            let rd = field_rd(w) as u32;
            let crf = (rd >> 2) as u8;
            let bit = match CrBit::from_index(rd & 0x3) {
                Some(b) => b,
                None => return err,
            };
            let expect_field = field_ra(w);
            if expect_field > 1 {
                return err;
            }
            Instr::Bc {
                crf,
                bit,
                expect: expect_field == 1,
                off: field_imm(w) as i16,
            }
        }
        op::ALU => {
            let a = match AluOp::from_code(w & 0x7FF) {
                Some(a) => a,
                None => return err,
            };
            Instr::Alu {
                op: a,
                rd: field_rd(w),
                ra: field_ra(w),
                rb: field_rb(w),
            }
        }
        op::CMP => {
            if field_rd(w) > 7 || (w & 0x7FF) != 0 {
                return err;
            }
            Instr::Cmp {
                crf: field_rd(w),
                ra: field_ra(w),
                rb: field_rb(w),
            }
        }
        op::BLR => {
            if w != op::BLR << 26 {
                return err;
            }
            Instr::Blr
        }
        op::SC => match Syscall::from_code(w & 0xFFFF) {
            Some(call) if (w >> 16) & 0x3FF == 0 => Instr::Sc { call },
            _ => return err,
        },
        op::HALT => {
            if w != op::HALT << 26 {
                return err;
            }
            Instr::Halt
        }
        op::MFLR => {
            if w & 0x001F_FFFF != 0 {
                return err;
            }
            Instr::Mflr { rd: field_rd(w) }
        }
        op::MTLR => {
            if w & 0x03E0_FFFF != 0 {
                return err;
            }
            Instr::Mtlr { ra: field_ra(w) }
        }
        _ => return err,
    };
    Ok(i)
}

impl fmt::Display for Instr {
    /// Renders the instruction in the assembler's textual syntax, so that
    /// `Display` output can be fed back through the assembler.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Addi { rd, ra, imm } => write!(f, "addi r{rd}, r{ra}, {imm}"),
            Instr::Addis { rd, ra, imm } => write!(f, "addis r{rd}, r{ra}, {imm}"),
            Instr::Andi { rd, ra, imm } => write!(f, "andi r{rd}, r{ra}, {imm}"),
            Instr::Ori { rd, ra, imm } => write!(f, "ori r{rd}, r{ra}, {imm}"),
            Instr::Xori { rd, ra, imm } => write!(f, "xori r{rd}, r{ra}, {imm}"),
            Instr::Cmpi { crf, ra, imm } => write!(f, "cmpi cr{crf}, r{ra}, {imm}"),
            Instr::Cmp { crf, ra, rb } => write!(f, "cmp cr{crf}, r{ra}, r{rb}"),
            Instr::Alu { op, rd, ra, rb } => match op {
                // rb is architecturally ignored by neg/not but still part of
                // the encoding; print it only when non-zero so the text form
                // stays lossless.
                AluOp::Neg | AluOp::Not if rb == 0 => {
                    write!(f, "{} r{rd}, r{ra}", op.mnemonic())
                }
                _ => write!(f, "{} r{rd}, r{ra}, r{rb}", op.mnemonic()),
            },
            Instr::Lwz { rd, ra, d } => write!(f, "lwz r{rd}, {d}(r{ra})"),
            Instr::Stw { rs, ra, d } => write!(f, "stw r{rs}, {d}(r{ra})"),
            Instr::Lbz { rd, ra, d } => write!(f, "lbz r{rd}, {d}(r{ra})"),
            Instr::Stb { rs, ra, d } => write!(f, "stb r{rs}, {d}(r{ra})"),
            Instr::B { off } => write!(f, "b {off}"),
            Instr::Bl { off } => write!(f, "bl {off}"),
            Instr::Bc {
                crf,
                bit,
                expect,
                off,
            } => {
                write!(f, "bc cr{crf}.{bit}, {}, {off}", expect as u8)
            }
            Instr::Blr => f.write_str("blr"),
            Instr::Mflr { rd } => write!(f, "mflr r{rd}"),
            Instr::Mtlr { ra } => write!(f, "mtlr r{ra}"),
            Instr::Sc { call } => write!(f, "sc {}", call.name()),
            Instr::Halt => f.write_str("halt"),
        }
    }
}

/// A no-operation encoding (`ori r0, r0, 0`), used by the injector to erase
/// an instruction ("value unassigned" assignment faults).
pub const NOP: u32 = op::ORI << 26;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_word_is_illegal() {
        assert!(decode(0).is_err());
    }

    #[test]
    fn nop_is_ori_zero() {
        assert_eq!(
            decode(NOP),
            Ok(Instr::Ori {
                rd: 0,
                ra: 0,
                imm: 0
            })
        );
    }

    #[test]
    fn branch_offsets_sign_extend() {
        for off in [-1_000_000, -1, 0, 1, 1_000_000] {
            let w = encode(Instr::B { off });
            assert_eq!(decode(w), Ok(Instr::B { off }));
            let w = encode(Instr::Bl { off });
            assert_eq!(decode(w), Ok(Instr::Bl { off }));
        }
    }

    #[test]
    fn bc_fields_round_trip() {
        for crf in 0..8u8 {
            for bit in [CrBit::Lt, CrBit::Gt, CrBit::Eq, CrBit::So] {
                for expect in [false, true] {
                    for off in [-32768i16, -1, 0, 5, 32767] {
                        let i = Instr::Bc {
                            crf,
                            bit,
                            expect,
                            off,
                        };
                        assert_eq!(decode(encode(i)), Ok(i));
                    }
                }
            }
        }
    }

    #[test]
    fn all_syscalls_round_trip() {
        for c in 0..=10 {
            let call = Syscall::from_code(c).unwrap();
            assert_eq!(call.code(), c);
            let i = Instr::Sc { call };
            assert_eq!(decode(encode(i)), Ok(i));
        }
        assert_eq!(Syscall::from_code(11), None);
    }

    #[test]
    fn all_alu_ops_round_trip() {
        for c in 0..16 {
            let a = AluOp::from_code(c).unwrap();
            assert_eq!(a.code(), c);
            let i = Instr::Alu {
                op: a,
                rd: 31,
                ra: 17,
                rb: 9,
            };
            assert_eq!(decode(encode(i)), Ok(i));
        }
        assert_eq!(AluOp::from_code(16), None);
    }

    #[test]
    fn cmpi_rejects_bad_crf() {
        // Hand-build a cmpi with crf field 8 (>7).
        let w = (0x07 << 26) | (8 << 21);
        assert!(decode(w).is_err());
    }

    #[test]
    fn display_is_stable() {
        assert!(!encode(Instr::Addi {
            rd: 3,
            ra: 1,
            imm: -4
        })
        .to_string()
        .is_empty());
        assert_eq!(
            Instr::Addi {
                rd: 3,
                ra: 1,
                imm: -4
            }
            .to_string(),
            "addi r3, r1, -4"
        );
        assert_eq!(
            Instr::Bc {
                crf: 0,
                bit: CrBit::Lt,
                expect: true,
                off: -3
            }
            .to_string(),
            "bc cr0.lt, 1, -3"
        );
        assert_eq!(
            Instr::Sc {
                call: Syscall::Malloc
            }
            .to_string(),
            "sc malloc"
        );
    }

    #[test]
    fn reserved_bits_reject() {
        // blr with a stray bit set is illegal.
        assert!(decode((0x11 << 26) | 1).is_err());
        // cmp with non-zero secondary bits is illegal.
        assert!(decode((0x10 << 26) | 3).is_err());
        // mflr with stray low bits.
        assert!(decode((0x14 << 26) | (3 << 21) | 7).is_err());
    }
}
