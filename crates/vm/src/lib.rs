//! # swifi-vm — the P601-lite virtual machine
//!
//! A deterministic 32-bit RISC virtual machine with first-class
//! fault-injection hooks, built as the execution substrate for reproducing
//! *Madeira, Costa, Vieira — "On the Emulation of Software Faults by
//! Software Fault Injection" (DSN 2000)*.
//!
//! The paper's experiments ran on a Parsytec PowerXplorer (4× PowerPC 601)
//! with the Xception fault injector. This crate substitutes that hardware
//! with an ISA-level emulator that exposes the same *architectural fault
//! surface* Xception corrupts:
//!
//! - instruction words fetched from memory ([`inspect::Inspector::on_fetch`]),
//! - operand loads/stores on the data bus
//!   ([`inspect::Inspector::on_load_value`], [`inspect::Inspector::on_store_value`]),
//! - effective addresses on the address bus
//!   ([`inspect::Inspector::on_load_addr`], [`inspect::Inspector::on_store_addr`]),
//! - general-purpose register write-back ([`inspect::Inspector::on_reg_write`]),
//! - memory itself ([`machine::Machine::poke_u32`]).
//!
//! Runs terminate in one of the paper's failure-mode observables:
//! normal completion (then compared against an oracle for
//! correct/incorrect results), a [`machine::Trap`] (crash), or budget
//! exhaustion (hang).
//!
//! # Quick start
//!
//! ```
//! use swifi_vm::asm::assemble;
//! use swifi_vm::inspect::Noop;
//! use swifi_vm::machine::{Machine, MachineConfig};
//!
//! let image = assemble("li r3, 7\nsc print_int\nli r3, 0\nhalt")?;
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load(&image);
//! let outcome = machine.run(&mut Noop);
//! assert_eq!(outcome.output(), b"7");
//! # Ok::<(), swifi_vm::asm::AsmError>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod blocks;
pub mod defuse;
pub mod inspect;
pub mod isa;
pub mod machine;
pub mod mem;
pub mod trace;

pub use blocks::BlockCacheStats;
pub use defuse::{DefUseRecorder, DefUseTrace, OccEvent, OccRecord, SiteTrace};
pub use inspect::{FetchPolicy, Inspector, Noop};
pub use isa::{decode, encode, Instr};
pub use machine::{
    FetchStop, ForkSnapshot, InputTape, Machine, MachineConfig, MachineSnapshot, RunOutcome, Trap,
};
pub use mem::{DecodeCacheStats, Image, MemoryDelta, MemorySnapshot, CODE_BASE, PAGE_SIZE};
