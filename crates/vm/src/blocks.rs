//! Basic-block superinstruction translation over the predecoded line cache.
//!
//! The PR 2 line cache removed decode from the hot loop but still pays a
//! per-instruction dispatch: every retired instruction does a cache lookup
//! (range check, `Line` match) plus loop bookkeeping before its actual
//! work. This module translates straight-line runs of code — *basic
//! blocks* — into dense superinstruction buffers that the interpreter
//! executes in one dispatch: one block lookup, then a tight walk over
//! pre-extracted operands with the program counter reconstructed
//! arithmetically (`start + 4·i`).
//!
//! # Block discovery
//!
//! Translation is lazy and first-touch, like the line cache: the first time
//! the block interpreter dispatches at a PC with no translation, it pulls
//! decoded instructions word-by-word **through
//! [`Memory::fetch_decoded`]** — so line-cache statistics and pin
//! semantics are byte-identical to the PR 2 path — until it reaches a
//! terminator:
//!
//! * a control transfer (`b`, `bl`, `bc`, `blr`) — translated into a
//!   pre-resolved [`Term`] with absolute targets;
//! * a syscall or halt — the block ends *before* it
//!   ([`Term::Fallthrough`]); the instruction itself executes on the
//!   single-step path, where scheduler state changes and the inlined
//!   syscall handlers live;
//! * an unavailable line (pinned PC, illegal word, PC outside the cached
//!   region) — the block ends before it and the slow fetch path takes
//!   over, preserving fetch corruption, fetch breakpoints, and precise
//!   illegal-instruction traps;
//! * the block length cap ([`MAX_BLOCK_OPS`]), bounding translation cost
//!   and quantum interaction.
//!
//! Straight-line register ops are additionally collapsed into multi-op
//! steps where profitable (consecutive `addi` pairs → [`Step::Addi2`], a
//! `cmpi` feeding the block-ending conditional branch →
//! [`Term::CmpiCondJump`]), so common loop idioms retire two instructions
//! per dispatch step.
//!
//! # Invalidation
//!
//! Blocks cache decoded *words*, so any write into the code region must
//! kill every block covering a written word. All such writes already
//! funnel through `Memory::invalidate_decoded` (guest stores, injector
//! pokes, warm-restore and fork-restore word diffs) and the fetch-pin
//! hooks; those paths append to a small code-write log inside [`Memory`]
//! which the block interpreter drains before every block dispatch. A store
//! executed *inside* a block checks the log immediately afterwards and
//! aborts the block at that point, so self-modifying code observes its own
//! writes exactly like the per-instruction interpreters.

use crate::isa::{CrBit, Instr};
use crate::mem::{Memory, CODE_BASE};

/// Maximum straight-line instructions per translated block. Bounds the cost
/// of a translation that is immediately invalidated and keeps whole blocks
/// small relative to the multi-core scheduling quantum (64), so block
/// dispatch rarely has to fall back near quantum boundaries.
pub(crate) const MAX_BLOCK_OPS: usize = 48;

/// Counters describing the basic-block translation cache's behaviour.
///
/// Exposed per-machine through `Machine::block_cache_stats` and rolled up
/// per-session by the campaign layer. Cumulative since the cache was
/// (re)initialised by program load; warm reboots deliberately do *not*
/// reset them (same contract as
/// [`DecodeCacheStats`](crate::mem::DecodeCacheStats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Blocks translated into superinstruction buffers (including blocks
    /// later invalidated and retranslated).
    pub blocks_built: u64,
    /// Dispatches served by an already-translated block.
    pub block_hits: u64,
    /// Instructions retired through block dispatch (the numerator of the
    /// "how much ran on the fast path" ratio; the denominator is the
    /// session's total retired count).
    pub block_instrs: u64,
    /// Dispatches that fell back to the per-instruction cached/slow paths
    /// while the block interpreter was active (syscalls, pinned PCs,
    /// quantum tails, untranslatable words).
    pub fallback_dispatches: u64,
    /// Blocks killed by a write into code they cover, by a fetch-pin
    /// change, or by a whole-cache flush.
    pub blocks_invalidated: u64,
}

/// One superinstruction: one or more straight-line instructions executed as
/// a unit. Sub-ops retire individually (hooks and trap PCs are exact), so
/// fusion is invisible to inspectors and to the failure-mode observables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// A single predecoded straight-line instruction (never a branch,
    /// syscall, or halt — those terminate translation).
    Op(Instr),
    /// Two consecutive `addi` instructions collapsed into one step — the
    /// dominant pair in compiled MiniC (constant loads, stack adjusts,
    /// counter updates).
    Addi2 {
        /// First `addi`: destination.
        rd1: u8,
        /// First `addi`: source.
        ra1: u8,
        /// First `addi`: immediate.
        imm1: i16,
        /// Second `addi`: destination.
        rd2: u8,
        /// Second `addi`: source.
        ra2: u8,
        /// Second `addi`: immediate.
        imm2: i16,
    },
}

impl Step {
    /// Instructions this step retires when fully executed.
    fn ops(&self) -> u32 {
        match self {
            Step::Op(_) => 1,
            Step::Addi2 { .. } => 2,
        }
    }
}

/// How a translated block ends. Branch targets are pre-resolved to
/// absolute PCs at translation time, so dispatch does no offset
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Term {
    /// Unconditional branch (`b`).
    Jump {
        /// Absolute branch target.
        target: u32,
    },
    /// Branch with link (`bl`).
    Call {
        /// Absolute branch target.
        target: u32,
        /// Pre-computed return address stored into `lr`.
        link: u32,
    },
    /// Conditional branch (`bc`) with both successors pre-resolved.
    CondJump {
        /// Condition-register field tested.
        crf: u8,
        /// Bit within the field.
        bit: CrBit,
        /// Branch taken when the bit equals this value.
        expect: bool,
        /// Target when taken.
        taken: u32,
        /// Target when not taken (the next instruction).
        fallthrough: u32,
    },
    /// Fused `cmpi` + `bc` on the same condition-register field: the
    /// compare executes and the branch resolves in a single terminator
    /// step (two instructions retire).
    CmpiCondJump {
        /// Register compared.
        ra: u8,
        /// Immediate compared against.
        imm: i16,
        /// Condition-register field written by the compare and tested by
        /// the branch.
        crf: u8,
        /// Bit within the field.
        bit: CrBit,
        /// Branch taken when the bit equals this value.
        expect: bool,
        /// Target when taken.
        taken: u32,
        /// Target when not taken.
        fallthrough: u32,
    },
    /// Return through the link register (`blr`); the target is dynamic.
    Return,
    /// The block ends without a control transfer: the next word is a
    /// syscall/halt, unavailable (pinned/illegal/out of range), or the
    /// length cap was hit. Execution continues at `next` on the
    /// per-instruction paths (which re-attempt block dispatch).
    Fallthrough {
        /// PC of the first instruction *not* part of the block.
        next: u32,
    },
}

impl Term {
    /// Instructions the terminator retires.
    fn ops(&self) -> u32 {
        match self {
            Term::Jump { .. } | Term::Call { .. } | Term::CondJump { .. } | Term::Return => 1,
            Term::CmpiCondJump { .. } => 2,
            Term::Fallthrough { .. } => 0,
        }
    }
}

/// A translated basic block: a dense buffer of superinstruction steps plus
/// a pre-resolved terminator.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// First code-word index covered (inclusive).
    first_word: u32,
    /// Words covered (body + terminator words; a trailing syscall/halt the
    /// block stops *before* is not covered).
    word_len: u32,
    /// Instructions a full execution of the block retires.
    pub(crate) cost: u32,
    /// Straight-line superinstruction steps.
    pub(crate) body: Box<[Step]>,
    /// How the block ends.
    pub(crate) term: Term,
}

impl Block {
    fn covers(&self, first: u32, last: u32) -> bool {
        // [first_word, first_word + word_len) ∩ [first, last] ≠ ∅
        self.first_word <= last && first < self.first_word + self.word_len
    }

    /// PC of the last code word the block covers (its terminator word, or
    /// the last body word for [`Term::Fallthrough`]). With the block's
    /// start PC this bounds the range an `Inspector::block_quiescent`
    /// query must vouch for.
    pub(crate) fn last_pc(&self) -> u32 {
        CODE_BASE + (self.first_word + self.word_len - 1) * 4
    }
}

/// Per-word dispatch map entry: no translation attempted yet.
const NOT_TRANSLATED: u32 = u32::MAX;
/// Per-word dispatch map entry: translation was attempted and produced no
/// usable block (word is a syscall/halt/pinned/illegal/out of range).
/// Cleared back to [`NOT_TRANSLATED`] when the word is written or a pin
/// changes, so the situation can be re-evaluated.
const NO_BLOCK: u32 = u32::MAX - 1;

/// Storage half of the block cache: the per-word dispatch map and the
/// translated blocks. Kept as a separate field of [`BlockCache`] so the
/// interpreter can hold a `&Block` from `store` while still bumping
/// counters in `stats` (disjoint field borrows).
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockStore {
    /// One entry per code word: [`NOT_TRANSLATED`], [`NO_BLOCK`], or the
    /// id of the block *starting* at that word.
    map: Vec<u32>,
    /// Block arena indexed by id; `None` slots are free.
    blocks: Vec<Option<Block>>,
    /// Free ids in `blocks`.
    free: Vec<u32>,
}

/// The basic-block translation cache: dispatch map, block arena, and
/// statistics. Owned by `Machine` as a sibling of guest memory so the
/// interpreter's split borrows can use both at once; invalidation flows
/// from `Memory`'s code-write log (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockCache {
    /// Dispatch map and translated blocks.
    pub(crate) store: BlockStore,
    /// Behaviour counters (see [`BlockCacheStats`]).
    pub(crate) stats: BlockCacheStats,
}

impl BlockCache {
    /// (Re)initialise for a code region of `words` words, clearing all
    /// translations and statistics. Called by `Machine::load`.
    pub(crate) fn init(&mut self, words: usize) {
        self.store.map.clear();
        self.store.map.resize(words, NOT_TRANSLATED);
        self.store.blocks.clear();
        self.store.free.clear();
        self.stats = BlockCacheStats::default();
    }
}

impl BlockStore {
    /// Fetch the block starting at `pc`, translating it on first touch.
    ///
    /// Returns `None` when no usable block starts at `pc` (misaligned or
    /// out-of-range PC, or the word is a syscall/halt/pinned/illegal) —
    /// the caller falls back to per-instruction dispatch.
    #[inline]
    pub(crate) fn lookup_or_translate(
        &mut self,
        pc: u32,
        mem: &mut Memory,
        stats: &mut BlockCacheStats,
    ) -> Option<&Block> {
        let off = pc.wrapping_sub(CODE_BASE);
        if off & 3 != 0 {
            return None;
        }
        let idx = (off >> 2) as usize;
        match self.map.get(idx).copied() {
            None | Some(NO_BLOCK) => None,
            Some(NOT_TRANSLATED) => self.translate(pc, idx, mem, stats),
            // `block_hits` is counted by the executor when it actually
            // dispatches the block, so hits + fallbacks partition the
            // dispatch count exactly.
            Some(id) => self.blocks[id as usize].as_ref(),
        }
    }

    /// Translate the block starting at `pc` (word `idx`), pulling decoded
    /// instructions through the line cache so decode statistics, pins, and
    /// illegal-word handling stay identical to the per-instruction path.
    #[cold]
    fn translate(
        &mut self,
        pc: u32,
        idx: usize,
        mem: &mut Memory,
        stats: &mut BlockCacheStats,
    ) -> Option<&Block> {
        let mut ops: Vec<Instr> = Vec::new();
        let mut cur = pc;
        let term = loop {
            if ops.len() >= MAX_BLOCK_OPS {
                break Term::Fallthrough { next: cur };
            }
            let Some(instr) = mem.fetch_decoded(cur) else {
                break Term::Fallthrough { next: cur };
            };
            match instr {
                Instr::B { off } => {
                    cur = cur.wrapping_add(4);
                    break Term::Jump {
                        target: cur
                            .wrapping_sub(4)
                            .wrapping_add((off as u32).wrapping_mul(4)),
                    };
                }
                Instr::Bl { off } => {
                    let target = cur.wrapping_add((off as u32).wrapping_mul(4));
                    let link = cur.wrapping_add(4);
                    cur = cur.wrapping_add(4);
                    break Term::Call { target, link };
                }
                Instr::Bc {
                    crf,
                    bit,
                    expect,
                    off,
                } => {
                    let taken = cur.wrapping_add((off as i32 as u32).wrapping_mul(4));
                    let fallthrough = cur.wrapping_add(4);
                    cur = cur.wrapping_add(4);
                    // Fuse a compare feeding this branch on the same field.
                    if let Some(&Instr::Cmpi {
                        crf: cmp_crf,
                        ra,
                        imm,
                    }) = ops.last()
                    {
                        if cmp_crf == crf {
                            ops.pop();
                            break Term::CmpiCondJump {
                                ra,
                                imm,
                                crf,
                                bit,
                                expect,
                                taken,
                                fallthrough,
                            };
                        }
                    }
                    break Term::CondJump {
                        crf,
                        bit,
                        expect,
                        taken,
                        fallthrough,
                    };
                }
                Instr::Blr => {
                    cur = cur.wrapping_add(4);
                    break Term::Return;
                }
                // Scheduler-visible instructions end the block *before*
                // themselves; the single-step paths own their semantics.
                Instr::Sc { .. } | Instr::Halt => {
                    break Term::Fallthrough { next: cur };
                }
                straight => {
                    ops.push(straight);
                    cur = cur.wrapping_add(4);
                }
            }
        };
        let cost = ops.len() as u32 + term.ops();
        if cost == 0 {
            // Nothing executable from here on the block path; remember
            // that so dispatch stops re-attempting translation.
            self.map[idx] = NO_BLOCK;
            return None;
        }
        // Collapse consecutive addi pairs into multi-op steps.
        let mut body: Vec<Step> = Vec::with_capacity(ops.len());
        let mut i = 0;
        while i < ops.len() {
            if let Instr::Addi {
                rd: rd1,
                ra: ra1,
                imm: imm1,
            } = ops[i]
            {
                if let Some(&Instr::Addi {
                    rd: rd2,
                    ra: ra2,
                    imm: imm2,
                }) = ops.get(i + 1)
                {
                    body.push(Step::Addi2 {
                        rd1,
                        ra1,
                        imm1,
                        rd2,
                        ra2,
                        imm2,
                    });
                    i += 2;
                    continue;
                }
            }
            body.push(Step::Op(ops[i]));
            i += 1;
        }
        debug_assert_eq!(
            body.iter().map(Step::ops).sum::<u32>() + term.ops(),
            cost,
            "fusion must preserve the instruction count"
        );
        let block = Block {
            first_word: idx as u32,
            word_len: (cur.wrapping_sub(pc)) / 4,
            cost,
            body: body.into_boxed_slice(),
            term,
        };
        stats.blocks_built += 1;
        let id = match self.free.pop() {
            Some(id) => {
                self.blocks[id as usize] = Some(block);
                id
            }
            None => {
                self.blocks.push(Some(block));
                (self.blocks.len() - 1) as u32
            }
        };
        self.map[idx] = id;
        self.blocks[id as usize].as_ref()
    }

    /// Kill every block covering a word in `[first, last]` (inclusive word
    /// indices) and let the written words head new blocks again.
    pub(crate) fn invalidate_words(&mut self, first: u32, last: u32, stats: &mut BlockCacheStats) {
        for (id, slot) in self.blocks.iter_mut().enumerate() {
            let Some(b) = slot else { continue };
            if b.covers(first, last) {
                self.map[b.first_word as usize] = NOT_TRANSLATED;
                *slot = None;
                self.free.push(id as u32);
                stats.blocks_invalidated += 1;
            }
        }
        let lo = first as usize;
        let hi = (last as usize).min(self.map.len().saturating_sub(1));
        for entry in self.map.get_mut(lo..=hi).unwrap_or(&mut []) {
            if *entry == NO_BLOCK {
                *entry = NOT_TRANSLATED;
            }
        }
    }

    /// Drop every translation (code-write log overflow): correct because
    /// retranslation is lazy and semantically idempotent.
    pub(crate) fn flush_all(&mut self, stats: &mut BlockCacheStats) {
        for slot in self.blocks.iter_mut() {
            if slot.take().is_some() {
                stats.blocks_invalidated += 1;
            }
        }
        self.blocks.clear();
        self.free.clear();
        for entry in self.map.iter_mut() {
            *entry = NOT_TRANSLATED;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{self, Syscall};

    fn code_mem(words: &[u32]) -> Memory {
        let mut m = Memory::new(64 * 1024);
        for (i, &w) in words.iter().enumerate() {
            m.write_u32(CODE_BASE + i as u32 * 4, w).unwrap();
        }
        m.init_decode_cache(CODE_BASE + words.len() as u32 * 4);
        m
    }

    fn addi(rd: u8, ra: u8, imm: i16) -> u32 {
        isa::encode(Instr::Addi { rd, ra, imm })
    }

    #[test]
    fn translates_up_to_a_branch_and_resolves_targets() {
        let mut mem = code_mem(&[
            addi(3, 0, 1),
            addi(4, 0, 2),
            isa::encode(Instr::B { off: -2 }),
        ]);
        let mut cache = BlockCache::default();
        cache.init(3);
        let b = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .expect("block translates");
        assert_eq!(b.cost, 3);
        // The addi pair fuses into one multi-op step.
        assert_eq!(b.body.len(), 1);
        assert!(matches!(b.body[0], Step::Addi2 { .. }));
        assert_eq!(
            b.term,
            Term::Jump {
                target: CODE_BASE + 8 - 8
            }
        );
        assert_eq!(cache.stats.blocks_built, 1);

        // Second lookup reuses the translation.
        let _ = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(cache.stats.blocks_built, 1);
    }

    #[test]
    fn cmpi_feeding_bc_fuses_into_the_terminator() {
        let mut mem = code_mem(&[
            addi(5, 5, -1),
            isa::encode(Instr::Cmpi {
                crf: 0,
                ra: 5,
                imm: 0,
            }),
            isa::encode(Instr::Bc {
                crf: 0,
                bit: CrBit::Eq,
                expect: true,
                off: 2,
            }),
        ]);
        let mut cache = BlockCache::default();
        cache.init(3);
        let b = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(b.cost, 3);
        assert_eq!(b.body.len(), 1, "cmpi folded out of the body");
        assert!(matches!(b.term, Term::CmpiCondJump { .. }));
    }

    #[test]
    fn syscall_halt_pin_and_illegal_end_blocks_early() {
        let sc = isa::encode(Instr::Sc {
            call: Syscall::PrintInt,
        });
        let mut mem = code_mem(&[addi(3, 0, 7), sc, addi(3, 0, 0), 0 /* illegal */]);
        let mut cache = BlockCache::default();
        cache.init(4);
        let b = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(b.cost, 1);
        assert_eq!(
            b.term,
            Term::Fallthrough {
                next: CODE_BASE + 4
            }
        );
        // The syscall word itself heads no block.
        assert!(cache
            .store
            .lookup_or_translate(CODE_BASE + 4, &mut mem, &mut cache.stats)
            .is_none());
        // A block before an illegal word stops at it.
        let b2 = cache
            .store
            .lookup_or_translate(CODE_BASE + 8, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(
            b2.term,
            Term::Fallthrough {
                next: CODE_BASE + 12
            }
        );
        // Pinned words refuse to head blocks.
        let mut mem2 = code_mem(&[addi(3, 0, 1), addi(4, 0, 2)]);
        mem2.pin_fetch_slow(CODE_BASE);
        let mut cache2 = BlockCache::default();
        cache2.init(2);
        assert!(cache2
            .store
            .lookup_or_translate(CODE_BASE, &mut mem2, &mut cache2.stats)
            .is_none());
    }

    #[test]
    fn invalidation_kills_covering_blocks_and_reopens_no_block_words() {
        let mut mem = code_mem(&[
            addi(3, 0, 1),
            addi(4, 0, 2),
            isa::encode(Instr::Blr),
            isa::encode(Instr::Halt),
        ]);
        let mut cache = BlockCache::default();
        cache.init(4);
        let _ = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        // Halt word: translation attempt records NO_BLOCK.
        assert!(cache
            .store
            .lookup_or_translate(CODE_BASE + 12, &mut mem, &mut cache.stats)
            .is_none());

        // Writing word 1 kills the covering block (words 0..=2).
        cache.store.invalidate_words(1, 1, &mut cache.stats);
        assert_eq!(cache.stats.blocks_invalidated, 1);
        // Retranslation works and reuses the freed slot.
        let _ = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(cache.stats.blocks_built, 2);
        assert_eq!(cache.store.blocks.len(), 1, "freed slot reused");

        // Invalidating the halt word reopens it for translation attempts.
        mem.write_u32(CODE_BASE + 12, addi(6, 0, 3)).unwrap();
        cache.store.invalidate_words(3, 3, &mut cache.stats);
        let b = cache
            .store
            .lookup_or_translate(CODE_BASE + 12, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(b.cost, 1, "patched word now heads a block");
    }

    #[test]
    fn flush_all_drops_every_translation() {
        let mut mem = code_mem(&[addi(3, 0, 1), isa::encode(Instr::Blr), addi(4, 0, 2)]);
        let mut cache = BlockCache::default();
        cache.init(3);
        let _ = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats);
        let _ = cache
            .store
            .lookup_or_translate(CODE_BASE + 8, &mut mem, &mut cache.stats);
        assert_eq!(cache.stats.blocks_built, 2);
        cache.store.flush_all(&mut cache.stats);
        assert_eq!(cache.stats.blocks_invalidated, 2);
        // Everything retranslates lazily afterwards.
        let _ = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(cache.stats.blocks_built, 3);
    }

    #[test]
    fn length_cap_splits_long_runs() {
        let words: Vec<u32> = (0..MAX_BLOCK_OPS as i16 + 10)
            .map(|i| addi(3, 3, i))
            .collect();
        let mut mem = code_mem(&words);
        let mut cache = BlockCache::default();
        cache.init(words.len());
        let b = cache
            .store
            .lookup_or_translate(CODE_BASE, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(b.cost as usize, MAX_BLOCK_OPS);
        let next = match b.term {
            Term::Fallthrough { next } => next,
            other => panic!("expected fallthrough, got {other:?}"),
        };
        assert_eq!(next, CODE_BASE + MAX_BLOCK_OPS as u32 * 4);
        // The continuation heads its own block.
        let b2 = cache
            .store
            .lookup_or_translate(next, &mut mem, &mut cache.stats)
            .unwrap();
        assert_eq!(b2.cost, 10);
    }
}
