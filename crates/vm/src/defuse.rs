//! Golden def-use trace recording — the measurement side of trace-guided
//! campaign pruning.
//!
//! A campaign replays the same clean ("golden") run once per input and
//! then perturbs it thousands of times, one fault per run. Most of those
//! perturbations provably cannot change the outcome: the corrupted value
//! is overwritten before anything reads it, or the corrupted instruction
//! makes exactly the decision the clean run made. Proving that requires
//! knowing, for every occurrence of every candidate trigger PC, what the
//! clean run did there and whether the value it produced was ever used.
//!
//! [`DefUseRecorder`] is an [`Inspector`] that rides along on one clean
//! run and produces a [`DefUseTrace`]:
//!
//! - **per-occurrence records** at each watched PC: the store's effective
//!   address, width, and byte-granular *deadness* (every stored byte
//!   overwritten before any load touches it); a conditional branch's
//!   observed successor and the shadow condition-register state; or the
//!   defined register and its deadness;
//! - **exact arrival totals** per watched PC, equal to what
//!   [`crate::Machine::run_to_fetch`] would count — including a final
//!   arrival that trapped instead of retiring;
//! - a **shadow register file** (values + validity bits) maintained by
//!   re-executing each retired instruction arithmetically, so the trace
//!   knows condition-register fields at branch sites without any hook on
//!   the values themselves.
//!
//! The recorder deliberately leans on the block interpreter's retire
//! contract ([`Inspector::on_block_retire`]): straight-line blocks that
//! touch no memory are declared quiescent and replayed *arithmetically*
//! from the static code image, so the traced run still executes mostly on
//! the hook-free fast path. Memory-touching instructions take the
//! per-instruction hook path, where `on_load_value` / `on_store_value`
//! supply the effective addresses the liveness analysis needs.
//!
//! Anything the analysis cannot follow — self-modifying code, execution
//! outside the static image — sets [`DefUseTrace::tainted`]: arrival
//! totals and the retired count stay exact (they are direct observations)
//! but the def-use records must not be used for pruning decisions.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use crate::inspect::{FetchPolicy, Inspector};
use crate::isa::{decode, AluOp, Instr, Syscall};
use crate::machine::{Cpu, InputTape, RunOutcome};
use crate::mem::CODE_BASE;

/// Per-site cap on recorded occurrence records. Sites that arrive more
/// often are marked [`SiteTrace::truncated`]; their arrival totals stay
/// exact but per-occurrence proofs are off the table.
pub const DEFAULT_OCC_CAP: usize = 1024;

/// What the golden run did at one arrival of a watched PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccEvent {
    /// The instruction stored to memory.
    Store {
        /// Effective address of the store.
        addr: u32,
        /// Width in bytes (1 or 4).
        size: u8,
        /// Whether the write completed (`false`: the store trapped, which
        /// also makes this the run's final arrival anywhere).
        completed: bool,
        /// Every stored byte was overwritten before any load read it, no
        /// global read barrier (e.g. `print_str`) intervened, and the run
        /// ended without the bytes ever being read.
        dead: bool,
    },
    /// The instruction was a conditional branch.
    Branch {
        /// The observed successor PC (`None` when the run ended before
        /// the successor could be observed).
        next_pc: Option<u32>,
        /// Shadow condition register at the branch (all eight fields).
        cr: u32,
        /// Per-field validity mask for `cr` (bit `f` covers field `f`).
        cr_valid: u8,
    },
    /// The instruction defined a general-purpose register.
    RegDef {
        /// The register written.
        rd: u8,
        /// The defined value was overwritten before any instruction (or
        /// syscall) read it.
        dead: bool,
    },
    /// Anything else (syscalls, compares, plain branches, trapped
    /// arrivals): no per-occurrence proof is attempted.
    Other,
}

/// One arrival of a watched PC in the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccRecord {
    /// Instructions retired before this arrival — the trigger depth an
    /// adaptive planner weighs against the whole run's length.
    pub retired_before: u64,
    /// What the golden run did here.
    pub event: OccEvent,
}

/// Everything recorded about one watched PC.
#[derive(Debug, Clone)]
pub struct SiteTrace {
    /// The static code word at the PC.
    pub word: u32,
    /// Its decoding (`None` when the word does not decode or the PC lies
    /// outside the static image).
    pub instr: Option<Instr>,
    /// Exact arrival count, mirroring the fetch-breakpoint semantics: a
    /// final arrival that trapped instead of retiring is counted.
    pub total: u64,
    /// Arrivals beyond the occurrence cap were counted but not recorded.
    pub truncated: bool,
    /// Per-arrival records, in arrival order (1-based occurrence `i` is
    /// `occs[i - 1]`).
    pub occs: Vec<OccRecord>,
}

impl SiteTrace {
    /// The record for 1-based occurrence `occ`, when recorded.
    pub fn occ(&self, occ: u64) -> Option<&OccRecord> {
        usize::try_from(occ.checked_sub(1)?)
            .ok()
            .and_then(|i| self.occs.get(i))
    }

    /// Whether every arrival has a record (nothing truncated, and the
    /// bookkeeping never lost an arrival to taint).
    pub fn complete(&self) -> bool {
        !self.truncated && self.occs.len() as u64 == self.total
    }
}

/// The finished def-use trace of one golden run.
#[derive(Debug, Clone)]
pub struct DefUseTrace {
    /// The analysis lost track of the instruction stream (self-modifying
    /// code, execution outside the static image). Arrival totals and
    /// `retired` remain exact; def-use records must not be trusted.
    pub tainted: bool,
    /// Total retired instructions of the golden run.
    pub retired: u64,
    sites: HashMap<u32, SiteTrace>,
}

impl DefUseTrace {
    /// Assemble a trace from explicit site records — for unit tests and
    /// planner experiments; real traces come from [`DefUseRecorder`].
    pub fn from_sites(
        tainted: bool,
        retired: u64,
        sites: impl IntoIterator<Item = (u32, SiteTrace)>,
    ) -> DefUseTrace {
        DefUseTrace {
            tainted,
            retired,
            sites: sites.into_iter().collect(),
        }
    }

    /// Whether per-occurrence records may back pruning decisions.
    pub fn usable(&self) -> bool {
        !self.tainted
    }

    /// Exact arrival total for a watched PC (`None`: not watched).
    pub fn total(&self, pc: u32) -> Option<u64> {
        self.sites.get(&pc).map(|s| s.total)
    }

    /// The full record for a watched PC (`None`: not watched).
    pub fn site(&self, pc: u32) -> Option<&SiteTrace> {
        self.sites.get(&pc)
    }
}

/// An observed store whose instruction has not retired yet. The commit is
/// deferred to the retire so a store that traps (hook fires, write does
/// not happen) is never treated as an overwrite.
#[derive(Debug, Clone, Copy)]
struct PendingStore {
    pc: u32,
    addr: u32,
    size: u8,
}

/// Builds a [`DefUseTrace`] over one clean run. Single-core only.
pub struct DefUseRecorder {
    code_lo: u32,
    /// Exclusive end of the static code image.
    code_hi: u32,
    decoded: Vec<Option<Instr>>,
    watch: Vec<u32>,
    watch_set: HashSet<u32>,
    occ_cap: usize,
    sites: HashMap<u32, SiteTrace>,
    tainted: bool,
    retired: u64,

    // Shadow architectural state: values plus validity. Invalidity only
    // enters through `malloc` (the heap pointer is allocator-internal)
    // and propagates through dataflow.
    regs: [u32; 32],
    valid: u32,
    cr: u32,
    cr_valid: u8,
    lr: u32,
    lr_valid: bool,
    tape: InputTape,
    num_cores: u32,

    // In-flight hook state.
    last_load: Option<(u32, u32)>,
    pending_store: Option<PendingStore>,
    open_branch: Option<(u32, usize)>,

    // Liveness worklists: pending (site, occ-index) refs per memory byte
    // and per register, resolved live on a read, dropped (still dead) on
    // an overwrite, left dead at end of run.
    mem_pending: HashMap<u32, Vec<(u32, usize)>>,
    reg_pending: [Vec<(u32, usize)>; 32],

    /// Memoized block-quiescence verdicts keyed by the block's
    /// `(first_pc, last_pc)` packed into one u64.
    quiesce: RefCell<HashMap<u64, bool>>,
}

impl DefUseRecorder {
    /// A recorder for one clean run.
    ///
    /// `core` seeds the shadow state (pass `machine.core(0)` after the
    /// warm-reboot restore), `code` is the static instruction image,
    /// `watch` the candidate trigger PCs, and `tape` a copy of the input
    /// the run will consume (`read_int`/`read_byte` are re-simulated from
    /// it so register validity survives input-dependent dataflow).
    pub fn new(core: &Cpu, code: &[u32], watch: &[u32], tape: InputTape) -> DefUseRecorder {
        let mut watch: Vec<u32> = watch.to_vec();
        watch.sort_unstable();
        watch.dedup();
        let decoded: Vec<Option<Instr>> = code.iter().map(|&w| decode(w).ok()).collect();
        let mut sites = HashMap::new();
        for &pc in &watch {
            let idx = pc
                .checked_sub(CODE_BASE)
                .map(|off| (off / 4) as usize)
                .filter(|_| pc % 4 == 0);
            let (word, instr) = match idx {
                Some(i) if i < code.len() => (code[i], decoded[i]),
                _ => (0, None),
            };
            sites.insert(
                pc,
                SiteTrace {
                    word,
                    instr,
                    total: 0,
                    truncated: false,
                    occs: Vec::new(),
                },
            );
        }
        DefUseRecorder {
            code_lo: CODE_BASE,
            code_hi: CODE_BASE + code.len() as u32 * 4,
            decoded,
            watch_set: watch.iter().copied().collect(),
            watch,
            occ_cap: DEFAULT_OCC_CAP,
            sites,
            tainted: false,
            retired: 0,
            regs: core.regs,
            valid: u32::MAX,
            cr: core.cr,
            cr_valid: 0xFF,
            lr: core.lr,
            lr_valid: true,
            tape,
            num_cores: 1,
            last_load: None,
            pending_store: None,
            open_branch: None,
            mem_pending: HashMap::new(),
            reg_pending: Default::default(),
            quiesce: RefCell::new(HashMap::new()),
        }
    }

    /// Retired instructions observed so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Shadow value of register `r`, when the dataflow kept it valid.
    pub fn shadow_reg(&self, r: usize) -> Option<u32> {
        (self.valid >> r & 1 == 1).then(|| self.regs[r])
    }

    /// Shadow link register, when valid.
    pub fn shadow_lr(&self) -> Option<u32> {
        self.lr_valid.then_some(self.lr)
    }

    /// Seal the trace. `outcome` is the run's result; a trap at a watched
    /// PC counts as one final arrival there (mirroring the
    /// fetch-breakpoint accounting, which observes the arrival before the
    /// instruction executes).
    pub fn finish(mut self, outcome: &RunOutcome) -> DefUseTrace {
        if let RunOutcome::Trapped { pc, .. } = outcome {
            let tpc = *pc;
            self.resolve_open_branch(tpc);
            let pending = self.pending_store.take();
            if self.watch_set.contains(&tpc) {
                let event = match pending {
                    // The final arrival was a store that trapped: the
                    // hook fired but the write never landed.
                    Some(ps) if ps.pc == tpc => OccEvent::Store {
                        addr: ps.addr,
                        size: ps.size,
                        completed: false,
                        dead: false,
                    },
                    _ => OccEvent::Other,
                };
                self.begin_occ(tpc, event);
            }
        }
        // Unresolved pending defs were never read: they stay dead, which
        // is their initial state — nothing to do.
        DefUseTrace {
            tainted: self.tainted,
            retired: self.retired,
            sites: self.sites,
        }
    }

    fn instr_at(&self, pc: u32) -> Option<Instr> {
        if pc < self.code_lo || pc >= self.code_hi || !pc.is_multiple_of(4) {
            return None;
        }
        self.decoded[((pc - self.code_lo) / 4) as usize]
    }

    /// Count an arrival at a watched PC and (below the cap) open its
    /// occurrence record. Returns the record's index.
    fn begin_occ(&mut self, pc: u32, event: OccEvent) -> Option<usize> {
        let retired_before = self.retired;
        let cap = self.occ_cap;
        let site = self.sites.get_mut(&pc)?;
        site.total += 1;
        if site.occs.len() >= cap {
            site.truncated = true;
            return None;
        }
        site.occs.push(OccRecord {
            retired_before,
            event,
        });
        Some(site.occs.len() - 1)
    }

    fn set_occ_event(&mut self, site: u32, idx: usize, f: impl FnOnce(&mut OccEvent)) {
        if let Some(s) = self.sites.get_mut(&site) {
            if let Some(rec) = s.occs.get_mut(idx) {
                f(&mut rec.event);
            }
        }
    }

    /// The instruction stream moved on to `pc`: whatever branch was
    /// waiting for its successor now knows it.
    fn resolve_open_branch(&mut self, pc: u32) {
        if let Some((site, idx)) = self.open_branch.take() {
            self.set_occ_event(site, idx, |e| {
                if let OccEvent::Branch { next_pc, .. } = e {
                    *next_pc = Some(pc);
                }
            });
        }
    }

    // ---- liveness bookkeeping -------------------------------------

    /// A store overwrote these bytes: pending defs there are dropped
    /// still-dead (their value was never read).
    fn kill_bytes(&mut self, addr: u32, size: u8) {
        for i in 0..size as u32 {
            self.mem_pending.remove(&addr.wrapping_add(i));
        }
    }

    /// A load read these bytes: every pending def touching them is live.
    fn read_bytes(&mut self, addr: u32, size: u8) {
        for i in 0..size as u32 {
            if let Some(refs) = self.mem_pending.remove(&addr.wrapping_add(i)) {
                for (site, idx) in refs {
                    self.resolve_store_live(site, idx);
                }
            }
        }
    }

    /// Mark a pending store live and withdraw its remaining bytes.
    fn resolve_store_live(&mut self, site: u32, idx: usize) {
        let mut range = None;
        self.set_occ_event(site, idx, |e| {
            if let OccEvent::Store {
                addr, size, dead, ..
            } = e
            {
                *dead = false;
                range = Some((*addr, *size));
            }
        });
        if let Some((addr, size)) = range {
            for i in 0..size as u32 {
                if let Some(refs) = self.mem_pending.get_mut(&addr.wrapping_add(i)) {
                    refs.retain(|&(s, x)| (s, x) != (site, idx));
                    if refs.is_empty() {
                        self.mem_pending.remove(&addr.wrapping_add(i));
                    }
                }
            }
        }
    }

    /// A syscall read guest memory at an address the analysis does not
    /// model (`print_str` walks to the NUL): everything pending is live.
    fn barrier_all_mem(&mut self) {
        let all: Vec<(u32, usize)> = self.mem_pending.values().flatten().copied().collect();
        for (site, idx) in all {
            self.resolve_store_live(site, idx);
        }
        self.mem_pending.clear();
    }

    /// Register `r` was read: pending defs of it are live.
    fn use_reg(&mut self, r: u8) {
        for (site, idx) in std::mem::take(&mut self.reg_pending[r as usize]) {
            self.set_occ_event(site, idx, |e| {
                if let OccEvent::RegDef { dead, .. } = e {
                    *dead = false;
                }
            });
        }
    }

    /// Register `r` was overwritten: pending defs drop, still dead.
    fn def_reg(&mut self, r: u8) {
        self.reg_pending[r as usize].clear();
    }

    // ---- shadow execution -----------------------------------------

    fn read(&mut self, r: u8) -> Option<u32> {
        self.use_reg(r);
        (self.valid >> r & 1 == 1).then(|| self.regs[r as usize])
    }

    /// Write back a GPR: kill pending defs on `rd`, optionally open a
    /// watched-occurrence pending def, and update the shadow value.
    fn write_gpr(&mut self, rd: u8, value: Option<u32>, watched_occ: Option<(u32, usize)>) {
        self.def_reg(rd);
        if let Some((site, idx)) = watched_occ {
            self.reg_pending[rd as usize].push((site, idx));
        }
        match value {
            Some(v) => {
                self.regs[rd as usize] = v;
                self.valid |= 1 << rd;
            }
            None => self.valid &= !(1 << rd),
        }
    }

    fn set_shadow_cr(&mut self, crf: u8, value: Option<(bool, bool, bool)>) {
        let f = crf & 7;
        match value {
            Some((lt, gt, eq)) => {
                let shift = f as u32 * 4;
                self.cr &= !(0xF << shift);
                self.cr |= ((lt as u32) | ((gt as u32) << 1) | ((eq as u32) << 2)) << shift;
                self.cr_valid |= 1 << f;
            }
            None => self.cr_valid &= !(1 << f),
        }
    }

    /// Arithmetically replay one retired instruction against the shadow
    /// state. `watched_occ` is the open occurrence record when `pc` is a
    /// watched site whose instruction defines a GPR.
    fn shadow_exec(&mut self, pc: u32, instr: Instr, watched_occ: Option<(u32, usize)>) {
        match instr {
            Instr::Addi { rd, ra, imm } => {
                let v = self.read(ra).map(|a| a.wrapping_add(imm as i32 as u32));
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Addis { rd, ra, imm } => {
                let v = self
                    .read(ra)
                    .map(|a| a.wrapping_add((imm as i32 as u32) << 16));
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Andi { rd, ra, imm } => {
                let v = self.read(ra).map(|a| a & imm as u32);
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Ori { rd, ra, imm } => {
                let v = self.read(ra).map(|a| a | imm as u32);
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Xori { rd, ra, imm } => {
                let v = self.read(ra).map(|a| a ^ imm as u32);
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Cmpi { crf, ra, imm } => {
                let v = self.read(ra).map(|a| {
                    let (a, b) = (a as i32, imm as i32);
                    (a < b, a > b, a == b)
                });
                self.set_shadow_cr(crf, v);
            }
            Instr::Cmp { crf, ra, rb } => {
                let a = self.read(ra);
                let b = self.read(rb);
                let v = a.zip(b).map(|(a, b)| {
                    let (a, b) = (a as i32, b as i32);
                    (a < b, a > b, a == b)
                });
                self.set_shadow_cr(crf, v);
            }
            Instr::Alu { op, rd, ra, rb } => {
                let a = self.read(ra);
                let b = self.read(rb);
                let v = match op {
                    // Unary ops ignore rb's value but the machine still
                    // read the register field; mirror the use.
                    AluOp::Neg => a.map(|a| (a as i32).wrapping_neg() as u32),
                    AluOp::Not => a.map(|a| !a),
                    _ => a.zip(b).and_then(|(a, b)| match op {
                        AluOp::Add => Some(a.wrapping_add(b)),
                        AluOp::Sub => Some(a.wrapping_sub(b)),
                        AluOp::Mullw => Some((a as i32).wrapping_mul(b as i32) as u32),
                        // A zero divisor would have trapped before the
                        // retire; reaching it here means the shadow has
                        // drifted — invalidate rather than divide.
                        AluOp::Divw => (b != 0).then(|| (a as i32).wrapping_div(b as i32) as u32),
                        AluOp::Divwu => (b != 0).then(|| a / b),
                        AluOp::Remw => (b != 0).then(|| (a as i32).wrapping_rem(b as i32) as u32),
                        AluOp::And => Some(a & b),
                        AluOp::Or => Some(a | b),
                        AluOp::Xor => Some(a ^ b),
                        AluOp::Nand => Some(!(a & b)),
                        AluOp::Nor => Some(!(a | b)),
                        AluOp::Slw => Some(a.wrapping_shl(b & 31)),
                        AluOp::Srw => Some(a.wrapping_shr(b & 31)),
                        AluOp::Sraw => Some(((a as i32).wrapping_shr(b & 31)) as u32),
                        AluOp::Neg | AluOp::Not => unreachable!("handled above"),
                    }),
                };
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Lwz { rd, ra, .. } => {
                self.use_reg(ra);
                let v = self.last_load.take().map(|(_, v)| v);
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Lbz { rd, ra, .. } => {
                self.use_reg(ra);
                let v = self.last_load.take().map(|(_, v)| v);
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Stw { rs, ra, .. } | Instr::Stb { rs, ra, .. } => {
                // Address and value reads; the memory effect was
                // committed from the store hooks at this retire.
                self.use_reg(ra);
                self.use_reg(rs);
            }
            Instr::B { .. } => {}
            Instr::Bl { .. } => {
                self.lr = pc.wrapping_add(4);
                self.lr_valid = true;
            }
            Instr::Bc { .. } => {}
            Instr::Blr => {}
            Instr::Mflr { rd } => {
                let v = self.lr_valid.then_some(self.lr);
                self.write_gpr(rd, v, watched_occ);
            }
            Instr::Mtlr { ra } => match self.read(ra) {
                Some(v) => {
                    self.lr = v;
                    self.lr_valid = true;
                }
                None => self.lr_valid = false,
            },
            Instr::Sc { call } => self.shadow_syscall(call),
            Instr::Halt => {
                self.use_reg(3);
            }
        }
    }

    fn shadow_syscall(&mut self, call: Syscall) {
        match call {
            Syscall::Exit | Syscall::PrintInt | Syscall::PrintChar => {
                self.use_reg(3);
            }
            Syscall::PrintStr => {
                self.use_reg(3);
                self.barrier_all_mem();
            }
            Syscall::ReadInt => {
                let popped = self.tape.pop_int();
                match popped {
                    Some(v) => {
                        self.write_gpr(3, Some(v as u32), None);
                        self.write_gpr(4, Some(0), None);
                    }
                    None => {
                        self.write_gpr(3, Some(0), None);
                        self.write_gpr(4, Some(1), None);
                    }
                }
            }
            Syscall::ReadByte => {
                let popped = self.tape.pop_byte();
                let v = match popped {
                    Some(b) => b as u32,
                    None => u32::MAX,
                };
                self.write_gpr(3, Some(v), None);
            }
            Syscall::Malloc => {
                self.use_reg(3);
                // The heap pointer lives in allocator bookkeeping the
                // shadow cannot see.
                self.write_gpr(3, None, None);
            }
            Syscall::Free => {
                self.use_reg(3);
            }
            Syscall::CoreId => {
                self.write_gpr(3, Some(0), None);
            }
            Syscall::NumCores => {
                let n = self.num_cores;
                self.write_gpr(3, Some(n), None);
            }
            Syscall::Barrier => {}
        }
    }

    /// Commit the memory effect of a completed store and, at a watched
    /// PC, open its occurrence record.
    fn commit_store(&mut self, ps: PendingStore) {
        if ps.addr < self.code_hi && ps.addr.wrapping_add(ps.size as u32) > self.code_lo {
            // Self-modifying code: the static decode table no longer
            // describes the run.
            self.tainted = true;
        }
        self.kill_bytes(ps.addr, ps.size);
        if self.watch_set.contains(&ps.pc) {
            let idx = self.begin_occ(
                ps.pc,
                OccEvent::Store {
                    addr: ps.addr,
                    size: ps.size,
                    completed: true,
                    dead: true,
                },
            );
            if let Some(idx) = idx {
                for i in 0..ps.size as u32 {
                    self.mem_pending
                        .entry(ps.addr.wrapping_add(i))
                        .or_default()
                        .push((ps.pc, idx));
                }
            }
        }
    }

    /// One instruction retired on the hook path.
    fn retire_one(&mut self, pc: u32) {
        self.resolve_open_branch(pc);
        if let Some(ps) = self.pending_store.take() {
            debug_assert_eq!(ps.pc, pc, "store hook and retire disagree");
            self.commit_store(ps);
        }
        let Some(instr) = self.instr_at(pc) else {
            // Executing outside the static image (or a word that does
            // not decode from it — only possible after self-modification
            // anyway): arrival totals stay exact, everything else is
            // off the table.
            self.tainted = true;
            if self.watch_set.contains(&pc) {
                self.begin_occ(pc, OccEvent::Other);
            }
            self.retired += 1;
            return;
        };
        let watched_occ = if self.watch_set.contains(&pc) {
            match instr {
                // Store occurrences were opened by `commit_store`.
                Instr::Stw { .. } | Instr::Stb { .. } => None,
                Instr::Bc { .. } => {
                    let (cr, cr_valid) = (self.cr, self.cr_valid);
                    let idx = self.begin_occ(
                        pc,
                        OccEvent::Branch {
                            next_pc: None,
                            cr,
                            cr_valid,
                        },
                    );
                    if let Some(idx) = idx {
                        self.open_branch = Some((pc, idx));
                    }
                    None
                }
                _ => match writes_gpr(instr) {
                    Some(rd) => self
                        .begin_occ(pc, OccEvent::RegDef { rd, dead: true })
                        .map(|idx| (pc, idx)),
                    None => {
                        self.begin_occ(pc, OccEvent::Other);
                        None
                    }
                },
            }
        } else {
            None
        };
        self.shadow_exec(pc, instr, watched_occ);
        self.retired += 1;
    }
}

/// The GPR an instruction defines through the write-back path, if any.
/// Syscall register effects are *not* write-backs (they bypass the
/// register-write hook), so `Sc` returns `None`.
fn writes_gpr(instr: Instr) -> Option<u8> {
    match instr {
        Instr::Addi { rd, .. }
        | Instr::Addis { rd, .. }
        | Instr::Andi { rd, .. }
        | Instr::Ori { rd, .. }
        | Instr::Xori { rd, .. }
        | Instr::Alu { rd, .. }
        | Instr::Lwz { rd, .. }
        | Instr::Lbz { rd, .. }
        | Instr::Mflr { rd } => Some(rd),
        _ => None,
    }
}

/// Instructions a quiescent block may contain: no memory traffic, no
/// syscalls, no core-state transitions. Pure register/branch arithmetic
/// the shadow stepper replays exactly.
fn pure_for_blocks(instr: Instr) -> bool {
    !matches!(
        instr,
        Instr::Lwz { .. }
            | Instr::Lbz { .. }
            | Instr::Stw { .. }
            | Instr::Stb { .. }
            | Instr::Sc { .. }
            | Instr::Halt
    )
}

impl Inspector for DefUseRecorder {
    fn fetch_policy(&self) -> FetchPolicy {
        // Watched PCs stay on the slow fetch path, exactly as they do on
        // injected runs — arrival counts must agree between the two.
        FetchPolicy::Pcs(self.watch.clone())
    }

    #[inline]
    fn on_load_value(&mut self, _core: usize, pc: u32, addr: u32, value: &mut u32) {
        let size = match self.instr_at(pc) {
            Some(Instr::Lbz { .. }) => 1,
            _ => 4,
        };
        self.read_bytes(addr, size);
        self.last_load = Some((addr, *value));
    }

    #[inline]
    fn on_store_value(&mut self, _core: usize, pc: u32, addr: u32, _value: &mut u32) {
        let size = match self.instr_at(pc) {
            Some(Instr::Stb { .. }) => 1,
            _ => 4,
        };
        self.pending_store = Some(PendingStore { pc, addr, size });
    }

    #[inline]
    fn on_retire(&mut self, _core: usize, pc: u32) {
        self.retire_one(pc);
    }

    fn block_quiescent(&self, _core: usize, first_pc: u32, last_pc: u32) -> bool {
        let key = (first_pc as u64) << 32 | last_pc as u64;
        if let Some(&v) = self.quiesce.borrow().get(&key) {
            return v;
        }
        let mut ok = first_pc >= self.code_lo && last_pc < self.code_hi;
        if ok {
            let mut pc = first_pc;
            while pc <= last_pc {
                let idx = ((pc - self.code_lo) / 4) as usize;
                match self.decoded.get(idx).copied().flatten() {
                    Some(instr) if pure_for_blocks(instr) && !self.watch_set.contains(&pc) => {}
                    _ => {
                        ok = false;
                        break;
                    }
                }
                pc += 4;
            }
        }
        self.quiesce.borrow_mut().insert(key, ok);
        ok
    }

    fn on_block_retire(&mut self, _core: usize, first_pc: u32, n: u32) {
        self.resolve_open_branch(first_pc);
        for i in 0..n {
            let pc = first_pc.wrapping_add(i * 4);
            // Quiescence guaranteed the whole block decodes from the
            // static image and contains no watched PC.
            if let Some(instr) = self.instr_at(pc) {
                self.shadow_exec(pc, instr, None);
            } else {
                self.tainted = true;
            }
            self.retired += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::machine::{Machine, MachineConfig};

    fn run_traced(src: &str, watch: &[u32], tape: InputTape) -> (Machine, RunOutcome, DefUseTrace) {
        let image = assemble(src).expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.set_input(tape.clone());
        let mut rec = DefUseRecorder::new(m.core(0), &image.code, watch, tape);
        let out = m.run(&mut rec);
        assert_eq!(rec.retired(), m.retired(), "recorder counts every retire");
        let trace = rec.finish(&out);
        assert_eq!(trace.retired, m.retired());
        (m, out, trace)
    }

    #[test]
    fn shadow_registers_match_machine() {
        // ALU, loads, stores, calls, and input reads; the shadow must
        // agree with the machine on every valid register at the end.
        let src = "
            li r5, 3
            li r6, 10
            mullw r7, r5, r6
            sc read_int
            add r8, r7, r3
            li r9, 0x200
            stw r8, 0(r9)
            lwz r10, 0(r9)
            bl helper
            li r3, 0
            halt
            helper:
            addi r11, r10, 7
            blr";
        let image = assemble(src).expect("assembles");
        let mut tape = InputTape::new();
        tape.push_ints([12]);
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.set_input(tape.clone());
        let mut rec = DefUseRecorder::new(m.core(0), &image.code, &[], tape);
        let out = m.run(&mut rec);
        assert!(matches!(out, RunOutcome::Completed { exit_code: 0, .. }));
        for r in 0..32 {
            if let Some(v) = rec.shadow_reg(r) {
                assert_eq!(v, m.core(0).regs[r], "shadow r{r} diverged");
            }
        }
        assert!(rec.shadow_reg(7).is_some(), "pure ALU dataflow stays valid");
        assert!(rec.shadow_reg(3).is_some(), "read_int simulated from tape");
        assert!(
            rec.shadow_reg(10).is_some(),
            "load value captured from hook"
        );
        assert!(rec.shadow_reg(11).is_some(), "callee dataflow stays valid");
        let trace = rec.finish(&out);
        assert!(trace.usable());
    }

    #[test]
    fn malloc_invalidates_dataflow() {
        let src = "
            li r3, 16
            sc malloc
            add r5, r3, r3
            li r3, 0
            halt";
        let (_, _, _trace) = run_traced(src, &[], InputTape::new());
        let image = assemble(src).expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut rec = DefUseRecorder::new(m.core(0), &image.code, &[], InputTape::new());
        m.run(&mut rec);
        assert_eq!(rec.shadow_reg(5), None, "malloc result is opaque");
        assert_eq!(rec.shadow_reg(3), Some(0), "later li revalidates");
    }

    #[test]
    fn dead_and_live_stores_are_distinguished() {
        // First store to 0x200 is overwritten before any read (dead);
        // the store to 0x204 is read back (live).
        let src = "
            li r9, 0x200
            li r5, 1
            stw r5, 0(r9)
            li r5, 2
            stw r5, 0(r9)
            li r6, 7
            stw r6, 4(r9)
            lwz r7, 4(r9)
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let dead_pc = image.addr_of(2);
        let over_pc = image.addr_of(4);
        let live_pc = image.addr_of(6);
        let (_, _, trace) = run_traced(src, &[dead_pc, over_pc, live_pc], InputTape::new());
        assert!(trace.usable());
        let dead = trace.site(dead_pc).unwrap().occ(1).unwrap();
        assert_eq!(
            dead.event,
            OccEvent::Store {
                addr: 0x200,
                size: 4,
                completed: true,
                dead: true
            }
        );
        let over = trace.site(over_pc).unwrap().occ(1).unwrap();
        // The overwriting store itself is never read before the run ends.
        assert!(matches!(over.event, OccEvent::Store { dead: true, .. }));
        let live = trace.site(live_pc).unwrap().occ(1).unwrap();
        assert!(matches!(
            live.event,
            OccEvent::Store {
                addr: 0x204,
                dead: false,
                ..
            }
        ));
    }

    #[test]
    fn partial_overwrite_keeps_the_store_live() {
        // A word store has one byte overwritten; a later word load still
        // reads the remaining three bytes, so the def is live.
        let src = "
            li r9, 0x200
            li r5, -1
            stw r5, 0(r9)
            li r6, 0
            stb r6, 0(r9)
            lwz r7, 0(r9)
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let word_store = image.addr_of(2);
        let (_, _, trace) = run_traced(src, &[word_store], InputTape::new());
        let occ = trace.site(word_store).unwrap().occ(1).unwrap();
        assert!(matches!(occ.event, OccEvent::Store { dead: false, .. }));
    }

    #[test]
    fn print_str_is_a_global_read_barrier() {
        let src = "
            li r9, 0x200
            li r5, 65
            stb r5, 0(r9)
            li r6, 0
            stb r6, 1(r9)
            addi r3, r9, 0
            sc print_str
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let store_pc = image.addr_of(2);
        let (_, out, trace) = run_traced(src, &[store_pc], InputTape::new());
        match &out {
            RunOutcome::Completed { output, .. } => assert_eq!(output, b"A"),
            other => panic!("unexpected outcome {other:?}"),
        }
        let occ = trace.site(store_pc).unwrap().occ(1).unwrap();
        assert!(
            matches!(occ.event, OccEvent::Store { dead: false, .. }),
            "print_str must pin pending stores live"
        );
    }

    #[test]
    fn arrival_totals_match_loop_counts() {
        let src = "
            li r5, 5
            li r9, 0x200
            loop:
            stw r5, 0(r9)
            addi r5, r5, -1
            cmpi cr0, r5, 0
            bc cr0.gt, 1, loop
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let store_pc = image.addr_of(2);
        let bc_pc = image.addr_of(5);
        let (_, _, trace) = run_traced(src, &[store_pc, bc_pc], InputTape::new());
        assert_eq!(trace.total(store_pc), Some(5));
        assert_eq!(trace.total(bc_pc), Some(5));
        let site = trace.site(store_pc).unwrap();
        assert!(site.complete());
        // Every iteration's store is overwritten by the next; the final
        // one is never read. All five are dead.
        for occ in &site.occs {
            assert!(matches!(occ.event, OccEvent::Store { dead: true, .. }));
        }
        // Trigger depth grows monotonically with occurrences.
        assert!(site
            .occs
            .windows(2)
            .all(|w| { w[0].retired_before < w[1].retired_before }));
    }

    #[test]
    fn branch_records_successor_and_shadow_cr() {
        let src = "
            li r5, 2
            loop:
            addi r5, r5, -1
            cmpi cr0, r5, 0
            bc cr0.gt, 1, loop
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let bc_pc = image.addr_of(3);
        let loop_pc = image.addr_of(1);
        let (_, _, trace) = run_traced(src, &[bc_pc], InputTape::new());
        let site = trace.site(bc_pc).unwrap();
        assert_eq!(site.total, 2);
        let first = site.occ(1).unwrap();
        let second = site.occ(2).unwrap();
        match (first.event, second.event) {
            (
                OccEvent::Branch {
                    next_pc: Some(n1),
                    cr_valid: v1,
                    ..
                },
                OccEvent::Branch {
                    next_pc: Some(n2),
                    cr_valid: v2,
                    ..
                },
            ) => {
                assert_eq!(n1, loop_pc, "first pass is taken");
                assert_eq!(n2, bc_pc + 4, "second pass falls through");
                assert!(v1 & 1 == 1 && v2 & 1 == 1, "cr0 shadow stays valid");
            }
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn trapping_store_counts_as_final_arrival() {
        let src = "
            li r9, 0x200
            li r5, 1
            li r6, 3
            loop:
            stw r5, 0(r9)
            addis r9, r9, 0x100
            addi r6, r6, -1
            cmpi cr0, r6, 0
            bc cr0.gt, 1, loop
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let store_pc = image.addr_of(3);
        let (_, out, trace) = run_traced(src, &[store_pc], InputTape::new());
        assert!(matches!(out, RunOutcome::Trapped { .. }));
        let site = trace.site(store_pc).unwrap();
        assert_eq!(site.total, 2, "completed first arrival plus the trap");
        assert!(matches!(
            site.occ(1).unwrap().event,
            OccEvent::Store {
                completed: true,
                ..
            }
        ));
        assert!(matches!(
            site.occ(2).unwrap().event,
            OccEvent::Store {
                completed: false,
                ..
            }
        ));
    }

    #[test]
    fn self_modifying_code_taints_the_trace() {
        // Store a `li r3, 0` over the placeholder word, then execute it.
        let src = "
            li r5, 0x38600000
            li r9, 0x110
            stw r5, 0(r9)
            ori r0, r0, 0
            halt";
        let image = assemble(src).expect("assembles");
        let (_, _, trace) = run_traced(src, &[], InputTape::new());
        assert_eq!(image.addr_of(4), 0x110);
        assert!(trace.tainted, "code store must taint");
        assert!(!trace.usable());
    }

    #[test]
    fn occurrence_cap_truncates_but_keeps_totals() {
        let src = "
            li r5, 40
            li r9, 0x200
            loop:
            stw r5, 0(r9)
            addi r5, r5, -1
            cmpi cr0, r5, 0
            bc cr0.gt, 1, loop
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let store_pc = image.addr_of(2);
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let mut rec = DefUseRecorder::new(m.core(0), &image.code, &[store_pc], InputTape::new());
        rec.occ_cap = 8;
        let out = m.run(&mut rec);
        let trace = rec.finish(&out);
        let site = trace.site(store_pc).unwrap();
        assert_eq!(site.total, 40);
        assert_eq!(site.occs.len(), 8);
        assert!(site.truncated);
        assert!(!site.complete());
    }

    #[test]
    fn register_def_liveness() {
        // r5's first def is clobbered before use (dead); the second def
        // feeds an add (live).
        let src = "
            li r5, 1
            li r5, 2
            add r6, r5, r5
            li r3, 0
            halt";
        let image = assemble(src).expect("assembles");
        let dead_pc = image.addr_of(0);
        let live_pc = image.addr_of(1);
        let (_, _, trace) = run_traced(src, &[dead_pc, live_pc], InputTape::new());
        assert!(matches!(
            trace.site(dead_pc).unwrap().occ(1).unwrap().event,
            OccEvent::RegDef { rd: 5, dead: true }
        ));
        assert!(matches!(
            trace.site(live_pc).unwrap().occ(1).unwrap().event,
            OccEvent::RegDef { rd: 5, dead: false }
        ));
    }

    #[test]
    fn unwatched_runs_record_nothing_but_stay_exact() {
        let src = "
            li r5, 100
            loop:
            addi r5, r5, -1
            cmpi cr0, r5, 0
            bc cr0.gt, 1, loop
            li r3, 0
            halt";
        let (m, out, trace) = run_traced(src, &[], InputTape::new());
        assert!(matches!(out, RunOutcome::Completed { exit_code: 0, .. }));
        assert_eq!(trace.retired, m.retired());
        assert_eq!(trace.total(0x104), None);
    }
}
