//! Execution hooks — the fault-injection surface of the virtual machine.
//!
//! The Xception tool described in the reproduced paper corrupts a running
//! program through the processor's architectural interfaces: the instruction
//! fetched from memory, the operand travelling on the data bus, the address
//! on the address bus, and the general-purpose registers. [`Inspector`]
//! exposes exactly those interception points. Every hook receives mutable
//! access to the in-flight value, so an implementation can corrupt it —
//! that *is* the injection mechanism — or merely observe it (tracing,
//! coverage, trigger monitoring).
//!
//! The machine is generic over the inspector type, so the common no-op case
//! ([`Noop`]) compiles away entirely.

/// How an [`Inspector`] wants the machine to treat instruction fetch,
/// declared once per run so the interpreter can route execution through its
/// predecoded translation cache (see `crates/vm/src/mem.rs`).
///
/// The fetch hook is the only [`Inspector`] interception point that happens
/// *before* decode, so it is the only one the decoded-line fast path cannot
/// service: a cached line was decoded from the pristine code word and
/// replaying it would silently skip an [`Inspector::on_fetch`] corruption.
/// The policy tells [`crate::Machine::run`] which PCs must stay on the slow
/// fetch→hook→decode path.
///
/// All post-decode hooks (`on_load_*`, `on_store_*`, `on_reg_write`,
/// `on_retire`) are unaffected: they fire identically on both paths.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// The inspector never mutates fetched words; every PC may execute from
    /// the decoded-line cache and `on_fetch` is never called.
    None,
    /// Only the listed PCs can be corrupted at fetch time; the machine pins
    /// them to the slow path and dispatches every other PC from the cache.
    Pcs(Vec<u32>),
    /// Any PC may be corrupted (or the inspector wants to observe every
    /// fetch, e.g. tracing); the machine disables the cache for the run.
    #[default]
    All,
}

/// Observation and corruption hooks invoked by the interpreter core.
///
/// All methods have empty default bodies; implement only what you need.
/// `core` identifies the executing core on multi-core machines and `pc` the
/// address of the instruction being executed.
pub trait Inspector {
    /// Declare which PCs this inspector may corrupt or observe at fetch
    /// time. Consulted once at the start of [`crate::Machine::run`].
    ///
    /// The conservative default is [`FetchPolicy::All`] (correct for any
    /// inspector, forfeits the translation-cache speedup). Implementations
    /// that never touch `on_fetch` should return [`FetchPolicy::None`];
    /// implementations with a known trigger set should return
    /// [`FetchPolicy::Pcs`].
    fn fetch_policy(&self) -> FetchPolicy {
        FetchPolicy::All
    }

    /// An instruction word has been fetched from `pc` but not yet decoded.
    ///
    /// Mutating `word` emulates an instruction-bus fault (Xception's
    /// "opcode fetch" corruption): the copy in memory is unchanged, but the
    /// processor executes the corrupted word.
    #[inline]
    fn on_fetch(&mut self, core: usize, pc: u32, word: &mut u32) {
        let _ = (core, pc, word);
    }

    /// A load instruction computed effective address `addr`, before the
    /// memory access. Mutating it emulates an address-bus fault.
    #[inline]
    fn on_load_addr(&mut self, core: usize, pc: u32, addr: &mut u32) {
        let _ = (core, pc, addr);
    }

    /// A value arrived from memory for a load. Mutating it emulates a
    /// data-bus fault on the inbound path.
    #[inline]
    fn on_load_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        let _ = (core, pc, addr, value);
    }

    /// A store instruction computed effective address `addr`, before the
    /// memory access. Mutating it emulates an address-bus fault.
    #[inline]
    fn on_store_addr(&mut self, core: usize, pc: u32, addr: &mut u32) {
        let _ = (core, pc, addr);
    }

    /// A value is about to be written to memory by a store. Mutating it
    /// emulates a data-bus fault on the outbound path.
    #[inline]
    fn on_store_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        let _ = (core, pc, addr, value);
    }

    /// A general-purpose register is about to be written (by ALU results,
    /// immediates, and loads alike). Mutating `value` emulates a fault in
    /// the register write-back path / integer unit.
    #[inline]
    fn on_reg_write(&mut self, core: usize, pc: u32, reg: u8, value: &mut u32) {
        let _ = (core, pc, reg, value);
    }

    /// An instruction at `pc` finished executing. Used by temporal fault
    /// triggers ("after N instructions") and by profiling.
    #[inline]
    fn on_retire(&mut self, core: usize, pc: u32) {
        let _ = (core, pc);
    }

    /// May the block interpreter execute the straight-line range
    /// `[first_pc, last_pc]` (inclusive, contiguous code words) without
    /// calling the per-instruction hooks?
    ///
    /// Returning `true` is a promise that, for every pc in the range and
    /// for loads/stores at *any* effective address, `on_load_addr`,
    /// `on_load_value`, `on_store_addr`, `on_store_value`, and
    /// `on_reg_write` would not observe or mutate anything, and that
    /// `on_retire` is insensitive to being replaced by one
    /// [`on_block_retire`](Inspector::on_block_retire) call at the end of
    /// the range. The interpreter then runs the block on a hook-free fast
    /// path; per-instruction trap PCs and retired counts are unchanged.
    ///
    /// The conservative default is `false` (always correct: every hook is
    /// delivered per instruction). Queried once per block dispatch, so it
    /// may depend on mutable state such as armed triggers.
    #[inline]
    fn block_quiescent(&self, core: usize, first_pc: u32, last_pc: u32) -> bool {
        let _ = (core, first_pc, last_pc);
        false
    }

    /// `n` instructions retired as one quiescent block dispatch starting at
    /// `first_pc` (see [`block_quiescent`](Inspector::block_quiescent)).
    /// Block instructions are contiguous, so the default reconstructs the
    /// exact per-instruction `on_retire` sequence; implementations with an
    /// order-insensitive `on_retire` (e.g. a bare counter) override it with
    /// a single batched update.
    #[inline]
    fn on_block_retire(&mut self, core: usize, first_pc: u32, n: u32) {
        for i in 0..n {
            self.on_retire(core, first_pc.wrapping_add(i * 4));
        }
    }
}

/// The do-nothing inspector; running with it is fault-free execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Noop;

impl Inspector for Noop {
    fn fetch_policy(&self) -> FetchPolicy {
        FetchPolicy::None
    }

    #[inline]
    fn block_quiescent(&self, _core: usize, _first_pc: u32, _last_pc: u32) -> bool {
        true
    }

    #[inline]
    fn on_block_retire(&mut self, _core: usize, _first_pc: u32, _n: u32) {}
}

/// Counts executed instructions and records the set of executed code
/// addresses. Useful for coverage-style analyses such as checking whether a
/// fault location was ever reached (the paper's dormant-fault discussion).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    /// Total retired instructions across all cores.
    pub retired: u64,
    /// Sorted, deduplicated executed addresses (filled on [`Profiler::finish`]).
    executed: Vec<u32>,
    dirty: bool,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Whether the instruction at `addr` was executed at least once.
    pub fn executed(&mut self, addr: u32) -> bool {
        self.finish();
        self.executed.binary_search(&addr).is_ok()
    }

    /// Number of distinct executed instruction addresses.
    pub fn coverage(&mut self) -> usize {
        self.finish();
        self.executed.len()
    }

    fn finish(&mut self) {
        if self.dirty {
            self.executed.sort_unstable();
            self.executed.dedup();
            self.dirty = false;
        }
    }
}

impl Inspector for Profiler {
    fn fetch_policy(&self) -> FetchPolicy {
        // Retirement is a post-decode event; the profiler never looks at
        // fetched words, so every PC may run from the decoded-line cache.
        FetchPolicy::None
    }

    #[inline]
    fn on_retire(&mut self, _core: usize, pc: u32) {
        self.retired += 1;
        self.executed.push(pc);
        self.dirty = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Noop>(), 0);
    }

    #[test]
    fn fetch_policies() {
        assert_eq!(Noop.fetch_policy(), FetchPolicy::None);
        assert_eq!(Profiler::new().fetch_policy(), FetchPolicy::None);

        // The trait default is the conservative "disable the cache".
        struct Custom;
        impl Inspector for Custom {}
        assert_eq!(Custom.fetch_policy(), FetchPolicy::All);
    }

    #[test]
    fn profiler_dedups_addresses() {
        let mut p = Profiler::new();
        p.on_retire(0, 0x100);
        p.on_retire(0, 0x104);
        p.on_retire(0, 0x100);
        assert_eq!(p.retired, 3);
        assert_eq!(p.coverage(), 2);
        assert!(p.executed(0x104));
        assert!(!p.executed(0x108));
    }
}
