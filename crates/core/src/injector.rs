//! The injector: fault specs compiled onto the VM's inspector hooks, under
//! a hardware-breakpoint budget.
//!
//! Xception triggers faults with the processor's debug registers; the
//! PowerPC 601 of the paper's testbed has **two** breakpoint registers.
//! That scarcity is load-bearing for the paper's results (the JB.team6
//! stack-shift fault needs more trigger addresses than the hardware
//! offers), so [`Injector::new`] enforces the same budget in
//! [`TriggerMode::Hardware`] and only lifts it in
//! [`TriggerMode::IntrusiveTraps`] — the "insert trap instructions"
//! fallback the paper calls *very intrusive*.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use swifi_vm::inspect::Inspector;
use swifi_vm::machine::Machine;

use crate::fault::{FaultSpec, Target, Trigger};

/// Breakpoint resources available for fault triggering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerMode {
    /// Use only the modelled hardware debug registers (two, like the
    /// PowerPC 601). Fault sets needing more distinct trigger addresses
    /// are rejected.
    Hardware,
    /// Software traps: unlimited triggers, at the cost of target-code
    /// intrusion (the paper's manual fallback).
    IntrusiveTraps,
}

/// Number of breakpoint registers in [`TriggerMode::Hardware`]
/// (PowerPC 601: two).
pub const HW_BREAKPOINTS: usize = 2;

/// Error building an [`Injector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectorError {
    /// The fault set needs more distinct trigger addresses than the
    /// hardware provides.
    BreakpointBudget {
        /// Distinct trigger addresses required.
        required: usize,
        /// Registers available.
        available: usize,
    },
    /// An [`Trigger::Always`] trigger was requested in hardware mode.
    AlwaysNeedsIntrusive,
    /// A spec failed [`FaultSpec::validate`].
    InvalidSpec(String),
}

impl std::fmt::Display for InjectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectorError::BreakpointBudget { required, available } => write!(
                f,
                "fault set needs {required} breakpoint registers but only {available} exist"
            ),
            InjectorError::AlwaysNeedsIntrusive => {
                f.write_str("`Always` triggers require intrusive trap mode")
            }
            InjectorError::InvalidSpec(msg) => write!(f, "invalid fault spec: {msg}"),
        }
    }
}

impl std::error::Error for InjectorError {}

/// An armed set of faults, pluggable into
/// [`Machine::run`](swifi_vm::machine::Machine::run) as an inspector.
///
/// # Examples
///
/// ```
/// use swifi_core::fault::FaultSpec;
/// use swifi_core::injector::{Injector, TriggerMode};
/// use swifi_vm::asm::assemble;
/// use swifi_vm::isa::{encode, Instr};
/// use swifi_vm::{Machine, MachineConfig};
///
/// let image = assemble("li r3, 1\nsc print_int\nli r3, 0\nhalt")?;
/// // Corrupt the fetch of the first instruction: r3 = 7 instead of 1.
/// let fault = FaultSpec::replace_instr(0x100, encode(Instr::Addi { rd: 3, ra: 0, imm: 7 }));
/// let mut injector = Injector::new(vec![fault], TriggerMode::Hardware, 1).unwrap();
/// let mut m = Machine::new(MachineConfig::default());
/// m.load(&image);
/// injector.prepare(&mut m).unwrap();
/// assert_eq!(m.run(&mut injector).output(), b"7");
/// assert!(injector.any_fired());
/// # Ok::<(), swifi_vm::asm::AsmError>(())
/// ```
#[derive(Debug)]
pub struct Injector {
    specs: Vec<FaultSpec>,
    by_fetch: HashMap<u32, Vec<usize>>,
    by_load: HashMap<u32, Vec<usize>>,
    by_store: HashMap<u32, Vec<usize>>,
    temporal: Vec<usize>,
    always: Vec<usize>,
    memory_faults: Vec<usize>,
    occurrences: Vec<u64>,
    armed: Vec<bool>,
    latched: Vec<bool>,
    fired: Vec<u64>,
    retired: u64,
    rng: StdRng,
}

impl Injector {
    /// Compile a fault set for injection.
    ///
    /// `seed` drives [`ErrorOp::ReplaceRandom`] values deterministically.
    ///
    /// # Errors
    ///
    /// See [`InjectorError`]; notably the hardware-breakpoint budget check
    /// in [`TriggerMode::Hardware`].
    pub fn new(
        specs: Vec<FaultSpec>,
        mode: TriggerMode,
        seed: u64,
    ) -> Result<Injector, InjectorError> {
        for s in &specs {
            s.validate().map_err(InjectorError::InvalidSpec)?;
        }
        if mode == TriggerMode::Hardware {
            let mut addrs: Vec<(bool, u32)> = Vec::new();
            for s in &specs {
                match s.trigger {
                    Trigger::OpcodeFetch(a) => addrs.push((true, a)),
                    Trigger::OperandLoad(a) | Trigger::OperandStore(a) => addrs.push((false, a)),
                    Trigger::Always => return Err(InjectorError::AlwaysNeedsIntrusive),
                    Trigger::AfterInstructions(_) => {}
                }
            }
            addrs.sort_unstable();
            addrs.dedup();
            if addrs.len() > HW_BREAKPOINTS {
                return Err(InjectorError::BreakpointBudget {
                    required: addrs.len(),
                    available: HW_BREAKPOINTS,
                });
            }
        }
        let n = specs.len();
        let mut inj = Injector {
            by_fetch: HashMap::new(),
            by_load: HashMap::new(),
            by_store: HashMap::new(),
            temporal: Vec::new(),
            always: Vec::new(),
            memory_faults: Vec::new(),
            occurrences: vec![0; n],
            armed: vec![false; n],
            latched: vec![false; n],
            fired: vec![0; n],
            retired: 0,
            rng: StdRng::seed_from_u64(seed),
            specs,
        };
        for (i, s) in inj.specs.iter().enumerate() {
            if matches!(s.target, Target::Memory(_)) {
                inj.memory_faults.push(i);
                continue;
            }
            match s.trigger {
                Trigger::OpcodeFetch(a) => inj.by_fetch.entry(a).or_default().push(i),
                Trigger::OperandLoad(a) => inj.by_load.entry(a).or_default().push(i),
                Trigger::OperandStore(a) => inj.by_store.entry(a).or_default().push(i),
                Trigger::AfterInstructions(_) => inj.temporal.push(i),
                Trigger::Always => inj.always.push(i),
            }
        }
        Ok(inj)
    }

    /// Apply memory-resident faults ([`Target::Memory`]) to the loaded
    /// machine — the paper's "error inserted in memory" fault model, which
    /// Xception realises by triggering at the first program instruction.
    ///
    /// # Errors
    ///
    /// Propagates [`swifi_vm::Trap`] if a fault addresses unmapped memory.
    pub fn prepare(&mut self, machine: &mut Machine) -> Result<(), swifi_vm::Trap> {
        for &i in &self.memory_faults.clone() {
            let spec = self.specs[i];
            if let Target::Memory(addr) = spec.target {
                let old = machine.peek_u32(addr)?;
                let random = self.rng.next_u32();
                machine.poke_u32(addr, spec.what.apply(old, random))?;
                self.fired[i] += 1;
            }
        }
        Ok(())
    }

    /// Number of times fault `i` actually corrupted state.
    pub fn fired_count(&self, i: usize) -> u64 {
        self.fired[i]
    }

    /// Whether any fault fired during the run — Xception's activation
    /// monitoring; a run whose faults never fired is *dormant*.
    pub fn any_fired(&self) -> bool {
        self.fired.iter().any(|&f| f > 0)
    }

    /// The compiled fault set.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    #[inline]
    fn fire_value(&mut self, i: usize, value: &mut u32) {
        let random = self.rng.next_u32();
        *value = self.specs[i].what.apply(*value, random);
        self.fired[i] += 1;
    }

    /// Advance occurrence counting for spec `i`; returns whether this
    /// occurrence fires.
    #[inline]
    fn occur(&mut self, i: usize) -> bool {
        self.occurrences[i] += 1;
        self.specs[i].when.fires(self.occurrences[i])
    }
}

impl Inspector for Injector {
    fn on_fetch(&mut self, _core: usize, pc: u32, word: &mut u32) {
        // Temporal triggers: occurrence = any fetch once the retired count
        // has passed the threshold.
        for k in 0..self.temporal.len() {
            let i = self.temporal[k];
            if let Trigger::AfterInstructions(n) = self.specs[i].trigger {
                if self.retired >= n {
                    let fires = self.occur(i);
                    self.armed[i] = fires;
                    if fires && matches!(self.specs[i].target, Target::InstrBus) {
                        self.fire_value(i, word);
                    }
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            let fires = self.occur(i);
            self.armed[i] = fires;
            if fires && matches!(self.specs[i].target, Target::InstrBus) {
                self.fire_value(i, word);
            }
        }
        let Some(idxs) = self.by_fetch.get(&pc) else { return };
        for i in idxs.clone() {
            let fires = self.occur(i);
            self.armed[i] = fires;
            match self.specs[i].target {
                Target::InstrBus => {
                    if fires {
                        self.fire_value(i, word);
                    }
                }
                Target::InstrMemory => {
                    // Once fired, the corruption is resident: it affects
                    // every later fetch of this address too.
                    if fires {
                        self.latched[i] = true;
                    }
                    if self.latched[i] {
                        self.fire_value(i, word);
                    }
                }
                _ => {}
            }
        }
    }

    fn on_load_addr(&mut self, _core: usize, pc: u32, addr: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::LoadAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        if let Some(idxs) = self.by_load.get(addr) {
            for i in idxs.clone() {
                let fires = self.occur(i);
                self.armed[i] = fires;
                if fires && matches!(self.specs[i].target, Target::LoadAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::LoadAddress) {
                self.fire_value(i, addr);
            }
        }
    }

    fn on_load_value(&mut self, _core: usize, pc: u32, addr: u32, value: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusLoad) {
                    self.fire_value(i, value);
                }
            }
        }
        if let Some(idxs) = self.by_load.get(&addr) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusLoad) {
                    self.fire_value(i, value);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::DataBusLoad) {
                self.fire_value(i, value);
            }
        }
    }

    fn on_store_addr(&mut self, _core: usize, pc: u32, addr: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::StoreAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        if let Some(idxs) = self.by_store.get(addr) {
            for i in idxs.clone() {
                let fires = self.occur(i);
                self.armed[i] = fires;
                if fires && matches!(self.specs[i].target, Target::StoreAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::StoreAddress) {
                self.fire_value(i, addr);
            }
        }
    }

    fn on_store_value(&mut self, _core: usize, pc: u32, addr: u32, value: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusStore) {
                    self.fire_value(i, value);
                }
            }
        }
        if let Some(idxs) = self.by_store.get(&addr) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusStore) {
                    self.fire_value(i, value);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::DataBusStore) {
                self.fire_value(i, value);
            }
        }
    }

    fn on_reg_write(&mut self, _core: usize, pc: u32, reg: u8, value: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] {
                    if let Target::Gpr(r) = self.specs[i].target {
                        if r == reg {
                            self.fire_value(i, value);
                        }
                    }
                }
            }
        }
    }

    fn on_retire(&mut self, _core: usize, _pc: u32) {
        self.retired += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ErrorOp, Firing};
    use swifi_vm::asm::assemble;
    use swifi_vm::isa::{encode, Instr};
    use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};

    fn run_with_faults(src: &str, faults: Vec<FaultSpec>, mode: TriggerMode) -> (RunOutcome, bool) {
        let image = assemble(src).unwrap();
        let mut inj = Injector::new(faults, mode, 42).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        inj.prepare(&mut m).unwrap();
        let out = m.run(&mut inj);
        (out, inj.any_fired())
    }

    const COUNT_SRC: &str = "
        li r5, 0
        li r6, 0
        addi r6, r6, 1
        addi r5, r5, 1
        cmpi cr0, r5, 5
        bc cr0.lt, 1, -3
        mr r3, r6
        sc print_int
        li r3, 0
        halt";

    #[test]
    fn clean_run_baseline() {
        let (out, fired) = run_with_faults(COUNT_SRC, vec![], TriggerMode::Hardware);
        assert_eq!(out.output(), b"5");
        assert!(!fired);
    }

    #[test]
    fn instr_bus_replace_changes_behavior() {
        // Replace `addi r6, r6, 1` (index 2, addr 0x108) with +2.
        let fault =
            FaultSpec::replace_instr(0x108, encode(Instr::Addi { rd: 6, ra: 6, imm: 2 }));
        let (out, fired) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"10");
        assert!(fired);
    }

    #[test]
    fn firing_first_applies_once() {
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi { rd: 6, ra: 6, imm: 2 })),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::First,
        };
        let (out, _) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"6"); // one iteration counted double
    }

    #[test]
    fn firing_nth_applies_to_that_occurrence_only() {
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi { rd: 6, ra: 6, imm: 2 })),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::Nth(3),
        };
        let (out, _) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"6");
    }

    #[test]
    fn instr_memory_latches() {
        // Fire once (First), but because the corruption is memory-resident
        // it keeps affecting every later iteration.
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi { rd: 6, ra: 6, imm: 2 })),
            target: Target::InstrMemory,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::First,
        };
        let (out, _) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"10");
    }

    const STORE_SRC: &str = "
        li r5, 41
        la r4, slot
        stw r5, 0(r4)
        lwz r3, 0(r4)
        sc print_int
        li r3, 0
        halt
        .data
        slot: .word 0";

    #[test]
    fn data_bus_store_corruption() {
        // The store is instruction index 3 (la is 2 words): addr 0x10C.
        let fault = FaultSpec {
            what: ErrorOp::Add(1),
            target: Target::DataBusStore,
            trigger: Trigger::OpcodeFetch(0x10C),
            when: Firing::EveryTime,
        };
        let (out, fired) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"42");
        assert!(fired);
    }

    #[test]
    fn data_bus_load_corruption() {
        let fault = FaultSpec {
            what: ErrorOp::Xor(0xFF),
            target: Target::DataBusLoad,
            trigger: Trigger::OpcodeFetch(0x110),
            when: Firing::EveryTime,
        };
        let (out, _) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), (41 ^ 0xFF).to_string().as_bytes());
    }

    #[test]
    fn operand_store_trigger_matches_address() {
        // slot lives at data_base = 0x100 + 9*4 = 0x124.
        let image = assemble(STORE_SRC).unwrap();
        let slot_addr = image.data_base();
        let fault = FaultSpec {
            what: ErrorOp::Add(9),
            target: Target::DataBusStore,
            trigger: Trigger::OperandStore(slot_addr),
            when: Firing::EveryTime,
        };
        let (out, _) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"50");
    }

    #[test]
    fn load_address_corruption_shifts_element() {
        let src = "
            la r4, tbl
            lwz r3, 0(r4)
            sc print_int
            li r3, 0
            halt
            .data
            tbl: .word 10, 20";
        let fault = FaultSpec {
            what: ErrorOp::Add(4),
            target: Target::LoadAddress,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::EveryTime,
        };
        let (out, _) = run_with_faults(src, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"20");
    }

    #[test]
    fn gpr_corruption_at_writeback() {
        let fault = FaultSpec {
            what: ErrorOp::Or(0x40),
            target: Target::Gpr(5),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::EveryTime,
        };
        // li r5, 41 at 0x100 writes r5 : 41 | 0x40 = 105.
        let (out, _) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"105");
    }

    #[test]
    fn memory_resident_fault_applied_at_prepare() {
        let image = assemble(STORE_SRC).unwrap();
        let slot_addr = image.data_base();
        let fault = FaultSpec {
            what: ErrorOp::Replace(123),
            target: Target::Memory(slot_addr),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::First,
        };
        // The program overwrites the slot, so the patched value is dead —
        // but prepare() must still have written it.
        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 7).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        inj.prepare(&mut m).unwrap();
        assert_eq!(m.peek_u32(slot_addr).unwrap(), 123);
        assert!(inj.any_fired());
    }

    #[test]
    fn temporal_trigger_fires_after_n() {
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Halt)),
            target: Target::InstrBus,
            trigger: Trigger::AfterInstructions(10),
            when: Firing::First,
        };
        let (out, fired) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert!(fired);
        // Halting mid-loop: no output printed.
        assert!(matches!(out, RunOutcome::Completed { .. }));
        assert_eq!(out.output(), b"");
    }

    #[test]
    fn budget_allows_two_distinct_addresses() {
        let faults = vec![
            FaultSpec::replace_instr(0x100, 0),
            FaultSpec::replace_instr(0x104, 0),
        ];
        assert!(Injector::new(faults, TriggerMode::Hardware, 0).is_ok());
    }

    #[test]
    fn budget_rejects_three_distinct_addresses() {
        let faults = vec![
            FaultSpec::replace_instr(0x100, 0),
            FaultSpec::replace_instr(0x104, 0),
            FaultSpec::replace_instr(0x108, 0),
        ];
        match Injector::new(faults, TriggerMode::Hardware, 0) {
            Err(InjectorError::BreakpointBudget { required: 3, available: 2 }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn intrusive_mode_lifts_budget() {
        let faults: Vec<FaultSpec> =
            (0..10).map(|i| FaultSpec::replace_instr(0x100 + i * 4, 0)).collect();
        assert!(Injector::new(faults, TriggerMode::IntrusiveTraps, 0).is_ok());
    }

    #[test]
    fn same_address_shares_a_breakpoint() {
        let faults = vec![
            FaultSpec::replace_instr(0x100, 0),
            FaultSpec {
                what: ErrorOp::Add(1),
                target: Target::DataBusStore,
                trigger: Trigger::OpcodeFetch(0x100),
                when: Firing::EveryTime,
            },
            FaultSpec::replace_instr(0x104, 0),
        ];
        assert!(Injector::new(faults, TriggerMode::Hardware, 0).is_ok());
    }

    #[test]
    fn always_trigger_needs_intrusive() {
        let fault = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::DataBusLoad,
            trigger: Trigger::Always,
            when: Firing::EveryTime,
        };
        assert_eq!(
            Injector::new(vec![fault], TriggerMode::Hardware, 0).unwrap_err(),
            InjectorError::AlwaysNeedsIntrusive
        );
        assert!(Injector::new(vec![fault], TriggerMode::IntrusiveTraps, 0).is_ok());
    }

    #[test]
    fn random_replacement_is_seed_deterministic() {
        let mk = |seed| {
            let fault = FaultSpec {
                what: ErrorOp::ReplaceRandom,
                target: Target::DataBusStore,
                trigger: Trigger::OpcodeFetch(0x10C),
                when: Firing::EveryTime,
            };
            let image = assemble(STORE_SRC).unwrap();
            let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, seed).unwrap();
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            m.run(&mut inj).output().to_vec()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn dormant_fault_never_fires() {
        // Trigger address never executed (inside skipped branch).
        let src = "
            b 3
            li r6, 1
            nop
            li r3, 0
            halt";
        let fault = FaultSpec::replace_instr(0x104, 0);
        let (out, fired) = run_with_faults(src, vec![fault], TriggerMode::Hardware);
        assert!(out.is_normal());
        assert!(!fired, "fault at unexecuted address must stay dormant");
    }
}
