//! The injector: fault specs compiled onto the VM's inspector hooks, under
//! a hardware-breakpoint budget.
//!
//! Xception triggers faults with the processor's debug registers; the
//! PowerPC 601 of the paper's testbed has **two** breakpoint registers.
//! That scarcity is load-bearing for the paper's results (the JB.team6
//! stack-shift fault needs more trigger addresses than the hardware
//! offers), so [`Injector::new`] enforces the same budget in
//! [`TriggerMode::Hardware`] and only lifts it in
//! [`TriggerMode::IntrusiveTraps`] — the "insert trap instructions"
//! fallback the paper calls *very intrusive*.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use swifi_vm::inspect::{FetchPolicy, Inspector};
use swifi_vm::machine::Machine;

use crate::fault::{FaultSpec, Target, Trigger};

/// Breakpoint resources available for fault triggering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerMode {
    /// Use only the modelled hardware debug registers (two, like the
    /// PowerPC 601). Fault sets needing more distinct trigger addresses
    /// are rejected.
    Hardware,
    /// Software traps: unlimited triggers, at the cost of target-code
    /// intrusion (the paper's manual fallback).
    IntrusiveTraps,
}

/// Number of breakpoint registers in [`TriggerMode::Hardware`]
/// (PowerPC 601: two).
pub const HW_BREAKPOINTS: usize = 2;

/// Error building an [`Injector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectorError {
    /// The fault set needs more distinct trigger addresses than the
    /// hardware provides.
    BreakpointBudget {
        /// Distinct trigger addresses required.
        required: usize,
        /// Registers available.
        available: usize,
    },
    /// An [`Trigger::Always`] trigger was requested in hardware mode.
    AlwaysNeedsIntrusive,
    /// A spec failed [`FaultSpec::validate`].
    InvalidSpec(String),
}

impl std::fmt::Display for InjectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectorError::BreakpointBudget {
                required,
                available,
            } => write!(
                f,
                "fault set needs {required} breakpoint registers but only {available} exist"
            ),
            InjectorError::AlwaysNeedsIntrusive => {
                f.write_str("`Always` triggers require intrusive trap mode")
            }
            InjectorError::InvalidSpec(msg) => write!(f, "invalid fault spec: {msg}"),
        }
    }
}

impl std::error::Error for InjectorError {}

/// Record of the guest-memory writes performed by [`Injector::prepare`]
/// for memory-resident faults.
///
/// The warm-reboot engine snapshots the machine *before* `prepare`, so
/// these writes land on pages the dirty tracker sees and a
/// [`swifi_vm::Machine::restore`] rolls them back automatically. The
/// record exists so callers can observe what was patched (and, for cold
/// lifecycles without a snapshot, [`PreparedWrites::undo`] them by hand).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PreparedWrites {
    writes: Vec<PreparedWrite>,
}

/// One guest-memory word patched during fault preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedWrite {
    /// Patched address.
    pub addr: u32,
    /// Word that was there before preparation.
    pub old: u32,
    /// Word written by the fault's error operation.
    pub new: u32,
}

impl PreparedWrites {
    /// Number of words patched.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether preparation touched guest memory at all.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// The individual patches, in application order.
    pub fn writes(&self) -> &[PreparedWrite] {
        &self.writes
    }

    /// Manually revert the patches (cold lifecycle without a snapshot).
    ///
    /// # Errors
    ///
    /// Propagates [`swifi_vm::Trap`] if an address became unmapped, which
    /// cannot happen when undoing onto the same machine.
    pub fn undo(&self, machine: &mut Machine) -> Result<(), swifi_vm::Trap> {
        // Reverse order so overlapping patches unwind correctly.
        for w in self.writes.iter().rev() {
            machine.poke_u32(w.addr, w.old)?;
        }
        Ok(())
    }
}

/// Cap on recorded [`FireEvent`]s per run; beyond it the log only marks
/// overflow. High-rate faults (`EveryTime` in a hot loop) corrupt far too
/// much state to be worth equivalence-classing anyway.
pub const FIRE_LOG_CAP: usize = 2048;

/// One corruption performed by the injector: the architectural value the
/// hook observed and the value it substituted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireEvent {
    /// Value before the error operation was applied.
    pub input: u32,
    /// Value written back by the error operation.
    pub output: u32,
}

/// Complete record of every corruption a run performed, in firing order.
///
/// Two faults whose logs agree event-for-event against the same clean run
/// produced the identical architectural-state delta, so their outcomes are
/// equal — the basis for outcome-equivalence collapse in the campaign
/// layer. `overflowed` marks a truncated log, which must never be used for
/// equivalence claims.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FireLog {
    /// The corruptions, in the order they were applied.
    pub events: Vec<FireEvent>,
    /// Set when more than [`FIRE_LOG_CAP`] fires happened; `events` holds
    /// only the prefix.
    pub overflowed: bool,
}

impl FireLog {
    /// Whether the log captured every fire of the run.
    pub fn complete(&self) -> bool {
        !self.overflowed
    }

    fn record(&mut self, input: u32, output: u32) {
        if self.events.len() >= FIRE_LOG_CAP {
            self.overflowed = true;
            return;
        }
        self.events.push(FireEvent { input, output });
    }
}

/// An armed set of faults, pluggable into
/// [`Machine::run`](swifi_vm::machine::Machine::run) as an inspector.
///
/// # Examples
///
/// ```
/// use swifi_core::fault::FaultSpec;
/// use swifi_core::injector::{Injector, TriggerMode};
/// use swifi_vm::asm::assemble;
/// use swifi_vm::isa::{encode, Instr};
/// use swifi_vm::{Machine, MachineConfig};
///
/// let image = assemble("li r3, 1\nsc print_int\nli r3, 0\nhalt")?;
/// // Corrupt the fetch of the first instruction: r3 = 7 instead of 1.
/// let fault = FaultSpec::replace_instr(0x100, encode(Instr::Addi { rd: 3, ra: 0, imm: 7 }));
/// let mut injector = Injector::new(vec![fault], TriggerMode::Hardware, 1).unwrap();
/// let mut m = Machine::new(MachineConfig::default());
/// m.load(&image);
/// injector.prepare(&mut m).unwrap();
/// assert_eq!(m.run(&mut injector).output(), b"7");
/// assert!(injector.any_fired());
/// # Ok::<(), swifi_vm::asm::AsmError>(())
/// ```
#[derive(Debug)]
pub struct Injector {
    specs: Vec<FaultSpec>,
    by_fetch: HashMap<u32, Vec<usize>>,
    by_load: HashMap<u32, Vec<usize>>,
    by_store: HashMap<u32, Vec<usize>>,
    temporal: Vec<usize>,
    always: Vec<usize>,
    memory_faults: Vec<usize>,
    occurrences: Vec<u64>,
    armed: Vec<bool>,
    latched: Vec<bool>,
    fired: Vec<u64>,
    retired: u64,
    rng: StdRng,
    /// Exact trigger-address sets mirroring the `by_*` table keys, used by
    /// the hooks to reject uninteresting fetches/loads/stores in a couple
    /// of integer compares instead of a hash lookup per event. Purely an
    /// accelerator: membership is exact, so dispatch is unchanged.
    hot_fetch: AddrSet,
    hot_load: AddrSet,
    hot_store: AddrSet,
    /// When set, skip the fast-rejection filters and walk the dispatch
    /// tables on every event — the seed implementation's behaviour, kept
    /// for differential testing and as the benchmark baseline.
    reference_dispatch: bool,
    /// When present, every corruption is appended here (see [`FireLog`]).
    /// `None` keeps the hot path log-free.
    fire_log: Option<FireLog>,
}

/// A tiny exact address set: range pre-check plus a linear scan. Campaign
/// fault sets carry at most a handful of trigger addresses (hardware mode
/// allows two), so misses cost one or two compares.
#[derive(Debug, Clone, Default)]
struct AddrSet {
    addrs: Vec<u32>,
    lo: u32,
    hi: u32,
}

impl AddrSet {
    fn build(keys: impl Iterator<Item = u32>) -> AddrSet {
        let mut addrs: Vec<u32> = keys.collect();
        addrs.sort_unstable();
        addrs.dedup();
        let (lo, hi) = match (addrs.first(), addrs.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            // Empty: an impossible range so `contains` is always false.
            _ => (1, 0),
        };
        AddrSet { addrs, lo, hi }
    }

    #[inline(always)]
    fn contains(&self, a: u32) -> bool {
        a >= self.lo && a <= self.hi && (self.addrs.len() == 1 || self.addrs.contains(&a))
    }

    /// Conservative overlap test against `[first, last]` on the set's
    /// bounding range: may report `true` when no member is actually inside
    /// (which only costs a fast path), never `false` when one is.
    #[inline(always)]
    fn intersects_range(&self, first: u32, last: u32) -> bool {
        self.lo <= last && self.hi >= first
    }
}

impl Injector {
    /// Compile a fault set for injection.
    ///
    /// `seed` drives [`ErrorOp::ReplaceRandom`] values deterministically.
    ///
    /// # Errors
    ///
    /// See [`InjectorError`]; notably the hardware-breakpoint budget check
    /// in [`TriggerMode::Hardware`].
    pub fn new(
        specs: Vec<FaultSpec>,
        mode: TriggerMode,
        seed: u64,
    ) -> Result<Injector, InjectorError> {
        for s in &specs {
            s.validate().map_err(InjectorError::InvalidSpec)?;
        }
        if mode == TriggerMode::Hardware {
            let mut addrs: Vec<(bool, u32)> = Vec::new();
            for s in &specs {
                match s.trigger {
                    Trigger::OpcodeFetch(a) => addrs.push((true, a)),
                    Trigger::OperandLoad(a) | Trigger::OperandStore(a) => addrs.push((false, a)),
                    Trigger::Always => return Err(InjectorError::AlwaysNeedsIntrusive),
                    Trigger::AfterInstructions(_) => {}
                }
            }
            addrs.sort_unstable();
            addrs.dedup();
            if addrs.len() > HW_BREAKPOINTS {
                return Err(InjectorError::BreakpointBudget {
                    required: addrs.len(),
                    available: HW_BREAKPOINTS,
                });
            }
        }
        let n = specs.len();
        let mut inj = Injector {
            by_fetch: HashMap::new(),
            by_load: HashMap::new(),
            by_store: HashMap::new(),
            temporal: Vec::new(),
            always: Vec::new(),
            memory_faults: Vec::new(),
            occurrences: vec![0; n],
            armed: vec![false; n],
            latched: vec![false; n],
            fired: vec![0; n],
            retired: 0,
            rng: StdRng::seed_from_u64(seed),
            specs,
            hot_fetch: AddrSet::default(),
            hot_load: AddrSet::default(),
            hot_store: AddrSet::default(),
            reference_dispatch: false,
            fire_log: None,
        };
        for (i, s) in inj.specs.iter().enumerate() {
            if matches!(s.target, Target::Memory(_)) {
                inj.memory_faults.push(i);
                continue;
            }
            match s.trigger {
                Trigger::OpcodeFetch(a) => inj.by_fetch.entry(a).or_default().push(i),
                Trigger::OperandLoad(a) => inj.by_load.entry(a).or_default().push(i),
                Trigger::OperandStore(a) => inj.by_store.entry(a).or_default().push(i),
                Trigger::AfterInstructions(_) => inj.temporal.push(i),
                Trigger::Always => inj.always.push(i),
            }
        }
        inj.hot_fetch = AddrSet::build(inj.by_fetch.keys().copied());
        inj.hot_load = AddrSet::build(inj.by_load.keys().copied());
        inj.hot_store = AddrSet::build(inj.by_store.keys().copied());
        Ok(inj)
    }

    /// Disable (or re-enable) the hot-path address filters, falling back to
    /// the exhaustive table walk of the original implementation.
    ///
    /// The filters are exact, so both dispatchers are observably identical
    /// (a tested invariant); the reference mode exists for differential
    /// testing and as the cold-boot benchmark baseline.
    pub fn set_reference_dispatch(&mut self, on: bool) {
        self.reference_dispatch = on;
    }

    /// Apply memory-resident faults ([`Target::Memory`]) to the loaded
    /// machine — the paper's "error inserted in memory" fault model, which
    /// Xception realises by triggering at the first program instruction.
    ///
    /// Returns the [`PreparedWrites`] record of every word patched, so the
    /// run lifecycle can undo them: under the warm-reboot engine the
    /// machine snapshot is taken *before* `prepare`, which makes
    /// [`swifi_vm::Machine::restore`] revert these writes for free via the
    /// dirty-page tracker.
    ///
    /// # Errors
    ///
    /// Propagates [`swifi_vm::Trap`] if a fault addresses unmapped memory.
    pub fn prepare(&mut self, machine: &mut Machine) -> Result<PreparedWrites, swifi_vm::Trap> {
        let mut writes = PreparedWrites::default();
        for &i in &self.memory_faults.clone() {
            let spec = self.specs[i];
            if let Target::Memory(addr) = spec.target {
                let old = machine.peek_u32(addr)?;
                let random = self.rng.next_u32();
                let new = spec.what.apply(old, random);
                machine.poke_u32(addr, new)?;
                writes.writes.push(PreparedWrite { addr, old, new });
                self.fired[i] += 1;
                if let Some(log) = &mut self.fire_log {
                    log.record(old, new);
                }
            }
        }
        Ok(writes)
    }

    /// Re-arm the injector for another run without recompiling the trigger
    /// routing tables: clears all occurrence/armed/latched/fired state and
    /// reseeds the random stream.
    ///
    /// This is the injector half of the warm-reboot contract — a session
    /// calls `reset` + [`swifi_vm::Machine::restore`] between runs, and the
    /// pair must be observably identical to building a fresh
    /// [`Injector::new`] against a freshly loaded machine (the routing
    /// tables depend only on the immutable fault set, so resetting the
    /// per-run state is exhaustive).
    pub fn reset(&mut self, seed: u64) {
        self.occurrences.iter_mut().for_each(|o| *o = 0);
        self.armed.iter_mut().for_each(|a| *a = false);
        self.latched.iter_mut().for_each(|l| *l = false);
        self.fired.iter_mut().for_each(|f| *f = 0);
        self.retired = 0;
        self.rng = StdRng::seed_from_u64(seed);
        if let Some(log) = &mut self.fire_log {
            log.events.clear();
            log.overflowed = false;
        }
    }

    /// Enable or disable the per-run corruption log. Enablement survives
    /// [`Injector::reset`] (the events are cleared, the choice is not), so
    /// a session can switch it on once per injector.
    pub fn set_fire_log(&mut self, on: bool) {
        self.fire_log = on.then(FireLog::default);
    }

    /// The corruption log of the current run, if logging is enabled.
    pub fn fire_log(&self) -> Option<&FireLog> {
        self.fire_log.as_ref()
    }

    /// Arm-after-restore: preload the occurrence counter of spec `i` with
    /// the `seen` trigger arrivals that happened in a forked-away prefix,
    /// so the next matching event is counted as occurrence `seen + 1`.
    ///
    /// Call immediately after [`Injector::reset`], before the resumed
    /// run. Sound only for specs with a fork point
    /// ([`FaultSpec::fork_point`]): for those, every pre-first-fire hook
    /// is an architectural no-op and no random values are drawn, so a
    /// freshly reset injector with a preloaded counter is observably
    /// identical to one that replayed the whole prefix.
    pub fn resume_occurrences(&mut self, i: usize, seen: u64) {
        self.occurrences[i] = seen;
    }

    /// Number of times fault `i` actually corrupted state.
    pub fn fired_count(&self, i: usize) -> u64 {
        self.fired[i]
    }

    /// Whether any fault fired during the run — Xception's activation
    /// monitoring; a run whose faults never fired is *dormant*.
    pub fn any_fired(&self) -> bool {
        self.fired.iter().any(|&f| f > 0)
    }

    /// The compiled fault set.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    #[inline]
    fn fire_value(&mut self, i: usize, value: &mut u32) {
        let random = self.rng.next_u32();
        let before = *value;
        *value = self.specs[i].what.apply(before, random);
        self.fired[i] += 1;
        if let Some(log) = &mut self.fire_log {
            log.record(before, *value);
        }
    }

    /// Advance occurrence counting for spec `i`; returns whether this
    /// occurrence fires.
    #[inline]
    fn occur(&mut self, i: usize) -> bool {
        self.occurrences[i] += 1;
        self.specs[i].when.fires(self.occurrences[i])
    }
}

impl Inspector for Injector {
    /// Declare exactly which PCs the machine must route through the slow
    /// fetch path so the predecoded translation cache can serve the rest.
    ///
    /// Every fetch-triggered spec — whatever its *target* — needs
    /// `on_fetch` at its trigger address, because that call is where
    /// occurrence counting and arming happen (a `Gpr`-target fault armed
    /// at a fetch address fires later in `on_reg_write` only if the fetch
    /// hook armed it). So the pin set is the `by_fetch` key set, not just
    /// the instruction-bus faults. Temporal (`AfterInstructions`) and
    /// `Always` triggers observe *every* fetch, and reference dispatch
    /// promises seed-exact hook sequencing; those demand
    /// [`FetchPolicy::All`].
    fn fetch_policy(&self) -> FetchPolicy {
        if self.reference_dispatch || !self.temporal.is_empty() || !self.always.is_empty() {
            return FetchPolicy::All;
        }
        let mut pcs: Vec<u32> = self.by_fetch.keys().copied().collect();
        pcs.sort_unstable();
        FetchPolicy::Pcs(pcs)
    }

    #[inline]
    fn on_fetch(&mut self, _core: usize, pc: u32, word: &mut u32) {
        if !self.reference_dispatch
            && self.temporal.is_empty()
            && self.always.is_empty()
            && !self.hot_fetch.contains(pc)
        {
            return;
        }
        self.fetch_slow(pc, word);
    }

    #[inline]
    fn on_load_addr(&mut self, _core: usize, pc: u32, addr: &mut u32) {
        if !self.reference_dispatch
            && self.always.is_empty()
            && !self.hot_fetch.contains(pc)
            && !self.hot_load.contains(*addr)
        {
            return;
        }
        self.load_addr_slow(pc, addr);
    }

    #[inline]
    fn on_load_value(&mut self, _core: usize, pc: u32, addr: u32, value: &mut u32) {
        if !self.reference_dispatch
            && self.always.is_empty()
            && !self.hot_fetch.contains(pc)
            && !self.hot_load.contains(addr)
        {
            return;
        }
        self.load_value_slow(pc, addr, value);
    }

    #[inline]
    fn on_store_addr(&mut self, _core: usize, pc: u32, addr: &mut u32) {
        if !self.reference_dispatch
            && self.always.is_empty()
            && !self.hot_fetch.contains(pc)
            && !self.hot_store.contains(*addr)
        {
            return;
        }
        self.store_addr_slow(pc, addr);
    }

    #[inline]
    fn on_store_value(&mut self, _core: usize, pc: u32, addr: u32, value: &mut u32) {
        if !self.reference_dispatch
            && self.always.is_empty()
            && !self.hot_fetch.contains(pc)
            && !self.hot_store.contains(addr)
        {
            return;
        }
        self.store_value_slow(pc, addr, value);
    }

    #[inline]
    fn on_reg_write(&mut self, _core: usize, pc: u32, reg: u8, value: &mut u32) {
        if !self.reference_dispatch && !self.hot_fetch.contains(pc) {
            return;
        }
        self.reg_write_slow(pc, reg, value);
    }

    #[inline]
    fn on_retire(&mut self, _core: usize, _pc: u32) {
        self.retired += 1;
    }

    /// A translated block never contains a pinned (`by_fetch`) PC, so
    /// inside one every hook above reduces to its fast-reject unless a
    /// data-address trigger could match a load/store effective address
    /// (`by_load`/`by_store`), an `Always` spec observes everything, or
    /// reference dispatch demands seed-exact sequencing. Quiescence is
    /// exactly the complement of those conditions; the `hot_fetch` range
    /// check is a defensive overlap test (the translator already refuses
    /// pinned words).
    #[inline]
    fn block_quiescent(&self, _core: usize, first_pc: u32, last_pc: u32) -> bool {
        !self.reference_dispatch
            && self.always.is_empty()
            && self.by_load.is_empty()
            && self.by_store.is_empty()
            && !self.hot_fetch.intersects_range(first_pc, last_pc)
    }

    /// `on_retire` is a bare order-insensitive counter, so a quiescent
    /// block batches it: temporal triggers still see the exact retired
    /// count (and a non-empty temporal set forces [`FetchPolicy::All`],
    /// which disables block translation entirely).
    #[inline]
    fn on_block_retire(&mut self, _core: usize, _first_pc: u32, n: u32) {
        self.retired += u64::from(n);
    }
}

/// The rarely-taken hook bodies, kept out of line so the `Inspector`
/// methods above inline into the interpreter loops as a couple of
/// compares. The fast-reject conditions in the trait impl are the exact
/// complement of what these bodies can react to, so splitting them off is
/// behaviour-preserving; the differential dispatch test below pins that.
impl Injector {
    #[inline(never)]
    fn fetch_slow(&mut self, pc: u32, word: &mut u32) {
        // Temporal triggers: occurrence = any fetch once the retired count
        // has passed the threshold.
        for k in 0..self.temporal.len() {
            let i = self.temporal[k];
            if let Trigger::AfterInstructions(n) = self.specs[i].trigger {
                if self.retired >= n {
                    let fires = self.occur(i);
                    self.armed[i] = fires;
                    if fires && matches!(self.specs[i].target, Target::InstrBus) {
                        self.fire_value(i, word);
                    }
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            let fires = self.occur(i);
            self.armed[i] = fires;
            if fires && matches!(self.specs[i].target, Target::InstrBus) {
                self.fire_value(i, word);
            }
        }
        let Some(idxs) = self.by_fetch.get(&pc) else {
            return;
        };
        for i in idxs.clone() {
            let fires = self.occur(i);
            self.armed[i] = fires;
            match self.specs[i].target {
                Target::InstrBus if fires => self.fire_value(i, word),
                Target::InstrMemory => {
                    // Once fired, the corruption is resident: it affects
                    // every later fetch of this address too.
                    if fires {
                        self.latched[i] = true;
                    }
                    if self.latched[i] {
                        self.fire_value(i, word);
                    }
                }
                _ => {}
            }
        }
    }

    #[inline(never)]
    fn load_addr_slow(&mut self, pc: u32, addr: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::LoadAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        if let Some(idxs) = self.by_load.get(addr) {
            for i in idxs.clone() {
                let fires = self.occur(i);
                self.armed[i] = fires;
                if fires && matches!(self.specs[i].target, Target::LoadAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::LoadAddress) {
                self.fire_value(i, addr);
            }
        }
    }

    #[inline(never)]
    fn load_value_slow(&mut self, pc: u32, addr: u32, value: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusLoad) {
                    self.fire_value(i, value);
                }
            }
        }
        if let Some(idxs) = self.by_load.get(&addr) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusLoad) {
                    self.fire_value(i, value);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::DataBusLoad) {
                self.fire_value(i, value);
            }
        }
    }

    #[inline(never)]
    fn store_addr_slow(&mut self, pc: u32, addr: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::StoreAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        if let Some(idxs) = self.by_store.get(addr) {
            for i in idxs.clone() {
                let fires = self.occur(i);
                self.armed[i] = fires;
                if fires && matches!(self.specs[i].target, Target::StoreAddress) {
                    self.fire_value(i, addr);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::StoreAddress) {
                self.fire_value(i, addr);
            }
        }
    }

    #[inline(never)]
    fn store_value_slow(&mut self, pc: u32, addr: u32, value: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusStore) {
                    self.fire_value(i, value);
                }
            }
        }
        if let Some(idxs) = self.by_store.get(&addr) {
            for i in idxs.clone() {
                if self.armed[i] && matches!(self.specs[i].target, Target::DataBusStore) {
                    self.fire_value(i, value);
                }
            }
        }
        for k in 0..self.always.len() {
            let i = self.always[k];
            if self.armed[i] && matches!(self.specs[i].target, Target::DataBusStore) {
                self.fire_value(i, value);
            }
        }
    }

    #[inline(never)]
    fn reg_write_slow(&mut self, pc: u32, reg: u8, value: &mut u32) {
        if let Some(idxs) = self.by_fetch.get(&pc) {
            for i in idxs.clone() {
                if self.armed[i] {
                    if let Target::Gpr(r) = self.specs[i].target {
                        if r == reg {
                            self.fire_value(i, value);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ErrorOp, Firing};
    use swifi_vm::asm::assemble;
    use swifi_vm::isa::{encode, Instr};
    use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};

    fn run_with_faults(src: &str, faults: Vec<FaultSpec>, mode: TriggerMode) -> (RunOutcome, bool) {
        let image = assemble(src).unwrap();
        let mut inj = Injector::new(faults, mode, 42).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        inj.prepare(&mut m).unwrap();
        let out = m.run(&mut inj);
        (out, inj.any_fired())
    }

    const COUNT_SRC: &str = "
        li r5, 0
        li r6, 0
        addi r6, r6, 1
        addi r5, r5, 1
        cmpi cr0, r5, 5
        bc cr0.lt, 1, -3
        mr r3, r6
        sc print_int
        li r3, 0
        halt";

    #[test]
    fn fast_dispatch_matches_reference_dispatch() {
        // The hot-path address filters must be invisible: for a spread of
        // targets and triggers, the filtered dispatcher and the exhaustive
        // reference dispatcher produce identical runs.
        let image = assemble(COUNT_SRC).unwrap();
        let specs = [
            FaultSpec::replace_instr(
                0x108,
                encode(Instr::Addi {
                    rd: 6,
                    ra: 6,
                    imm: 2,
                }),
            ),
            FaultSpec {
                what: ErrorOp::Xor(0x0000_00FF),
                target: Target::InstrMemory,
                trigger: Trigger::OpcodeFetch(0x10C),
                when: Firing::First,
            },
            FaultSpec {
                what: ErrorOp::Add(3),
                target: Target::Gpr(5),
                trigger: Trigger::OpcodeFetch(0x10C),
                when: Firing::EveryTime,
            },
            FaultSpec {
                what: ErrorOp::Or(1),
                target: Target::InstrBus,
                trigger: Trigger::AfterInstructions(10),
                when: Firing::Nth(2),
            },
        ];
        for (k, spec) in specs.iter().enumerate() {
            let mut results = Vec::new();
            for reference in [false, true] {
                let mut inj = Injector::new(vec![*spec], TriggerMode::Hardware, 42).unwrap();
                inj.set_reference_dispatch(reference);
                let mut m = Machine::new(MachineConfig::default());
                m.load(&image);
                inj.prepare(&mut m).unwrap();
                let out = m.run(&mut inj);
                results.push((out.output().to_vec(), inj.any_fired()));
            }
            assert_eq!(
                results[0], results[1],
                "spec {k} diverged between dispatchers"
            );
        }
    }

    #[test]
    fn fetch_policy_mirrors_trigger_routing() {
        // Fetch-triggered faults (any target) pin exactly their trigger
        // addresses; load/store/memory faults pin nothing.
        let inj = Injector::new(
            vec![
                FaultSpec {
                    what: ErrorOp::Or(1),
                    target: Target::Gpr(5),
                    trigger: Trigger::OpcodeFetch(0x10C),
                    when: Firing::EveryTime,
                },
                FaultSpec::replace_instr(0x108, encode(Instr::Halt)),
                FaultSpec {
                    what: ErrorOp::Xor(4),
                    target: Target::DataBusLoad,
                    trigger: Trigger::OperandLoad(0x2000),
                    when: Firing::First,
                },
            ],
            TriggerMode::IntrusiveTraps,
            1,
        )
        .unwrap();
        assert_eq!(inj.fetch_policy(), FetchPolicy::Pcs(vec![0x108, 0x10C]));

        // Memory-resident faults live in prepare(), not in on_fetch.
        let mem_only = Injector::new(
            vec![FaultSpec {
                what: ErrorOp::Or(1),
                target: Target::Memory(0x104),
                trigger: Trigger::OpcodeFetch(0x100),
                when: Firing::First,
            }],
            TriggerMode::Hardware,
            1,
        )
        .unwrap();
        assert_eq!(mem_only.fetch_policy(), FetchPolicy::Pcs(Vec::new()));

        // Temporal triggers must observe every fetch.
        let temporal = Injector::new(
            vec![FaultSpec {
                what: ErrorOp::Or(1),
                target: Target::InstrBus,
                trigger: Trigger::AfterInstructions(10),
                when: Firing::First,
            }],
            TriggerMode::Hardware,
            1,
        )
        .unwrap();
        assert_eq!(temporal.fetch_policy(), FetchPolicy::All);

        // Reference dispatch restores seed-exact hook sequencing.
        let mut refmode = Injector::new(vec![], TriggerMode::Hardware, 1).unwrap();
        assert_eq!(refmode.fetch_policy(), FetchPolicy::Pcs(Vec::new()));
        refmode.set_reference_dispatch(true);
        assert_eq!(refmode.fetch_policy(), FetchPolicy::All);
    }

    #[test]
    fn injected_runs_identical_across_interpreters() {
        // The cached interpreter with armed-PC pinning must reproduce the
        // reference interpreter's outcome for fetch-triggered faults of
        // every target kind.
        let image = assemble(COUNT_SRC).unwrap();
        let specs = [
            FaultSpec::replace_instr(
                0x108,
                encode(Instr::Addi {
                    rd: 6,
                    ra: 6,
                    imm: 2,
                }),
            ),
            FaultSpec {
                what: ErrorOp::Xor(0x0000_00FF),
                target: Target::InstrMemory,
                trigger: Trigger::OpcodeFetch(0x10C),
                when: Firing::First,
            },
            FaultSpec {
                what: ErrorOp::Add(3),
                target: Target::Gpr(5),
                trigger: Trigger::OpcodeFetch(0x10C),
                when: Firing::EveryTime,
            },
            FaultSpec {
                what: ErrorOp::Or(1),
                target: Target::Memory(0x110),
                trigger: Trigger::OpcodeFetch(0x100),
                when: Firing::First,
            },
        ];
        for (k, spec) in specs.iter().enumerate() {
            let mut results = Vec::new();
            for reference_interp in [false, true] {
                let mut inj = Injector::new(vec![*spec], TriggerMode::Hardware, 42).unwrap();
                let mut m = Machine::new(MachineConfig::default());
                m.set_reference_interp(reference_interp);
                m.load(&image);
                inj.prepare(&mut m).unwrap();
                let out = m.run(&mut inj);
                results.push((out, inj.any_fired(), m.retired()));
            }
            assert_eq!(
                results[0], results[1],
                "spec {k} diverged between interpreters"
            );
        }
    }

    #[test]
    fn clean_run_baseline() {
        let (out, fired) = run_with_faults(COUNT_SRC, vec![], TriggerMode::Hardware);
        assert_eq!(out.output(), b"5");
        assert!(!fired);
    }

    #[test]
    fn instr_bus_replace_changes_behavior() {
        // Replace `addi r6, r6, 1` (index 2, addr 0x108) with +2.
        let fault = FaultSpec::replace_instr(
            0x108,
            encode(Instr::Addi {
                rd: 6,
                ra: 6,
                imm: 2,
            }),
        );
        let (out, fired) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"10");
        assert!(fired);
    }

    #[test]
    fn firing_first_applies_once() {
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi {
                rd: 6,
                ra: 6,
                imm: 2,
            })),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::First,
        };
        let (out, _) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"6"); // one iteration counted double
    }

    #[test]
    fn firing_nth_applies_to_that_occurrence_only() {
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi {
                rd: 6,
                ra: 6,
                imm: 2,
            })),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::Nth(3),
        };
        let (out, _) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"6");
    }

    #[test]
    fn instr_memory_latches() {
        // Fire once (First), but because the corruption is memory-resident
        // it keeps affecting every later iteration.
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi {
                rd: 6,
                ra: 6,
                imm: 2,
            })),
            target: Target::InstrMemory,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::First,
        };
        let (out, _) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"10");
    }

    const STORE_SRC: &str = "
        li r5, 41
        la r4, slot
        stw r5, 0(r4)
        lwz r3, 0(r4)
        sc print_int
        li r3, 0
        halt
        .data
        slot: .word 0";

    #[test]
    fn data_bus_store_corruption() {
        // The store is instruction index 3 (la is 2 words): addr 0x10C.
        let fault = FaultSpec {
            what: ErrorOp::Add(1),
            target: Target::DataBusStore,
            trigger: Trigger::OpcodeFetch(0x10C),
            when: Firing::EveryTime,
        };
        let (out, fired) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"42");
        assert!(fired);
    }

    #[test]
    fn data_bus_load_corruption() {
        let fault = FaultSpec {
            what: ErrorOp::Xor(0xFF),
            target: Target::DataBusLoad,
            trigger: Trigger::OpcodeFetch(0x110),
            when: Firing::EveryTime,
        };
        let (out, _) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), (41 ^ 0xFF).to_string().as_bytes());
    }

    #[test]
    fn operand_store_trigger_matches_address() {
        // slot lives at data_base = 0x100 + 9*4 = 0x124.
        let image = assemble(STORE_SRC).unwrap();
        let slot_addr = image.data_base();
        let fault = FaultSpec {
            what: ErrorOp::Add(9),
            target: Target::DataBusStore,
            trigger: Trigger::OperandStore(slot_addr),
            when: Firing::EveryTime,
        };
        let (out, _) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"50");
    }

    #[test]
    fn load_address_corruption_shifts_element() {
        let src = "
            la r4, tbl
            lwz r3, 0(r4)
            sc print_int
            li r3, 0
            halt
            .data
            tbl: .word 10, 20";
        let fault = FaultSpec {
            what: ErrorOp::Add(4),
            target: Target::LoadAddress,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::EveryTime,
        };
        let (out, _) = run_with_faults(src, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"20");
    }

    #[test]
    fn gpr_corruption_at_writeback() {
        let fault = FaultSpec {
            what: ErrorOp::Or(0x40),
            target: Target::Gpr(5),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::EveryTime,
        };
        // li r5, 41 at 0x100 writes r5 : 41 | 0x40 = 105.
        let (out, _) = run_with_faults(STORE_SRC, vec![fault], TriggerMode::Hardware);
        assert_eq!(out.output(), b"105");
    }

    #[test]
    fn memory_resident_fault_applied_at_prepare() {
        let image = assemble(STORE_SRC).unwrap();
        let slot_addr = image.data_base();
        let fault = FaultSpec {
            what: ErrorOp::Replace(123),
            target: Target::Memory(slot_addr),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::First,
        };
        // The program overwrites the slot, so the patched value is dead —
        // but prepare() must still have written it.
        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 7).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        inj.prepare(&mut m).unwrap();
        assert_eq!(m.peek_u32(slot_addr).unwrap(), 123);
        assert!(inj.any_fired());
    }

    #[test]
    fn temporal_trigger_fires_after_n() {
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Halt)),
            target: Target::InstrBus,
            trigger: Trigger::AfterInstructions(10),
            when: Firing::First,
        };
        let (out, fired) = run_with_faults(COUNT_SRC, vec![fault], TriggerMode::Hardware);
        assert!(fired);
        // Halting mid-loop: no output printed.
        assert!(matches!(out, RunOutcome::Completed { .. }));
        assert_eq!(out.output(), b"");
    }

    #[test]
    fn budget_allows_two_distinct_addresses() {
        let faults = vec![
            FaultSpec::replace_instr(0x100, 0),
            FaultSpec::replace_instr(0x104, 0),
        ];
        assert!(Injector::new(faults, TriggerMode::Hardware, 0).is_ok());
    }

    #[test]
    fn budget_rejects_three_distinct_addresses() {
        let faults = vec![
            FaultSpec::replace_instr(0x100, 0),
            FaultSpec::replace_instr(0x104, 0),
            FaultSpec::replace_instr(0x108, 0),
        ];
        match Injector::new(faults, TriggerMode::Hardware, 0) {
            Err(InjectorError::BreakpointBudget {
                required: 3,
                available: 2,
            }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn intrusive_mode_lifts_budget() {
        let faults: Vec<FaultSpec> = (0..10)
            .map(|i| FaultSpec::replace_instr(0x100 + i * 4, 0))
            .collect();
        assert!(Injector::new(faults, TriggerMode::IntrusiveTraps, 0).is_ok());
    }

    #[test]
    fn same_address_shares_a_breakpoint() {
        let faults = vec![
            FaultSpec::replace_instr(0x100, 0),
            FaultSpec {
                what: ErrorOp::Add(1),
                target: Target::DataBusStore,
                trigger: Trigger::OpcodeFetch(0x100),
                when: Firing::EveryTime,
            },
            FaultSpec::replace_instr(0x104, 0),
        ];
        assert!(Injector::new(faults, TriggerMode::Hardware, 0).is_ok());
    }

    #[test]
    fn always_trigger_needs_intrusive() {
        let fault = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::DataBusLoad,
            trigger: Trigger::Always,
            when: Firing::EveryTime,
        };
        assert_eq!(
            Injector::new(vec![fault], TriggerMode::Hardware, 0).unwrap_err(),
            InjectorError::AlwaysNeedsIntrusive
        );
        assert!(Injector::new(vec![fault], TriggerMode::IntrusiveTraps, 0).is_ok());
    }

    #[test]
    fn random_replacement_is_seed_deterministic() {
        let mk = |seed| {
            let fault = FaultSpec {
                what: ErrorOp::ReplaceRandom,
                target: Target::DataBusStore,
                trigger: Trigger::OpcodeFetch(0x10C),
                when: Firing::EveryTime,
            };
            let image = assemble(STORE_SRC).unwrap();
            let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, seed).unwrap();
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            m.run(&mut inj).output().to_vec()
        };
        assert_eq!(mk(1), mk(1));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn prepare_records_and_undoes_writes() {
        let image = assemble(STORE_SRC).unwrap();
        let slot_addr = image.data_base();
        let fault = FaultSpec {
            what: ErrorOp::Replace(123),
            target: Target::Memory(slot_addr),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::First,
        };
        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 7).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let before = m.peek_u32(slot_addr).unwrap();
        let writes = inj.prepare(&mut m).unwrap();
        assert_eq!(writes.len(), 1);
        assert_eq!(
            writes.writes()[0],
            PreparedWrite {
                addr: slot_addr,
                old: before,
                new: 123
            }
        );
        assert_eq!(m.peek_u32(slot_addr).unwrap(), 123);
        writes.undo(&mut m).unwrap();
        assert_eq!(m.peek_u32(slot_addr).unwrap(), before);
    }

    #[test]
    fn reset_matches_fresh_injector() {
        // Run a ReplaceRandom fault twice through one injector with
        // reset(), and once through a fresh injector: identical outputs.
        let fault = FaultSpec {
            what: ErrorOp::ReplaceRandom,
            target: Target::DataBusStore,
            trigger: Trigger::OpcodeFetch(0x10C),
            when: Firing::EveryTime,
        };
        let image = assemble(STORE_SRC).unwrap();

        let fresh = |seed: u64| {
            let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, seed).unwrap();
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let out = m.run(&mut inj).output().to_vec();
            (out, inj.any_fired())
        };

        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 11).unwrap();
        for seed in [11u64, 99, 11] {
            inj.reset(seed);
            assert!(!inj.any_fired(), "reset must clear fired counters");
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let out = m.run(&mut inj).output().to_vec();
            assert_eq!((out, inj.any_fired()), fresh(seed), "seed {seed}");
        }
    }

    #[test]
    fn reset_clears_latched_instr_memory_state() {
        // An InstrMemory fault latches after firing; reset must unlatch it
        // so the next run starts clean.
        let fault = FaultSpec {
            what: ErrorOp::Replace(encode(Instr::Addi {
                rd: 6,
                ra: 6,
                imm: 2,
            })),
            target: Target::InstrMemory,
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::Nth(3),
        };
        let image = assemble(COUNT_SRC).unwrap();
        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 0).unwrap();
        let run = |inj: &mut Injector| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            m.run(inj).output().to_vec()
        };
        let first = run(&mut inj);
        inj.reset(0);
        let second = run(&mut inj);
        assert_eq!(first, second, "reset run must replay identically");
    }

    #[test]
    fn dormant_fault_never_fires() {
        // Trigger address never executed (inside skipped branch).
        let src = "
            b 3
            li r6, 1
            nop
            li r3, 0
            halt";
        let fault = FaultSpec::replace_instr(0x104, 0);
        let (out, fired) = run_with_faults(src, vec![fault], TriggerMode::Hardware);
        assert!(out.is_normal());
        assert!(!fired, "fault at unexecuted address must stay dormant");
    }

    #[test]
    fn fire_log_records_each_corruption_and_survives_reset() {
        let fault = FaultSpec {
            what: ErrorOp::Add(1),
            target: Target::DataBusStore,
            trigger: Trigger::OpcodeFetch(0x10C),
            when: Firing::EveryTime,
        };
        let image = assemble(STORE_SRC).unwrap();
        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 7).unwrap();
        inj.set_fire_log(true);
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        m.run(&mut inj);
        let log = inj.fire_log().unwrap();
        assert_eq!(
            log.events,
            vec![FireEvent {
                input: 41,
                output: 42
            }]
        );
        assert!(log.complete());

        // reset keeps logging enabled but clears the events.
        inj.reset(7);
        let log = inj.fire_log().unwrap();
        assert!(log.events.is_empty() && !log.overflowed);

        // prepare()-time memory patches are corruptions too.
        let slot = image.data_base();
        let mem = FaultSpec {
            what: ErrorOp::Replace(123),
            target: Target::Memory(slot),
            trigger: Trigger::OpcodeFetch(0x100),
            when: Firing::First,
        };
        let mut inj = Injector::new(vec![mem], TriggerMode::Hardware, 7).unwrap();
        inj.set_fire_log(true);
        let mut m = Machine::new(MachineConfig::default());
        m.load(&image);
        let before = m.peek_u32(slot).unwrap();
        inj.prepare(&mut m).unwrap();
        assert_eq!(
            inj.fire_log().unwrap().events,
            vec![FireEvent {
                input: before,
                output: 123
            }]
        );
    }

    #[test]
    fn resume_occurrences_shifts_the_firing_window() {
        // COUNT_SRC fetches 0x108 exactly 5 times, so a Nth(7) fault is
        // dormant on a cold run. Preloading 4 prefix arrivals makes the
        // same 5 fetches occurrences 5..=9, so occurrence 7 fires.
        let fault = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::Gpr(6),
            trigger: Trigger::OpcodeFetch(0x108),
            when: Firing::Nth(7),
        };
        let image = assemble(COUNT_SRC).unwrap();
        let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 3).unwrap();
        let run = |inj: &mut Injector| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            m.run(inj);
        };

        run(&mut inj);
        assert_eq!(inj.fired_count(0), 0, "5 arrivals can't reach Nth(7)");

        inj.reset(3);
        inj.resume_occurrences(0, 4);
        run(&mut inj);
        assert_eq!(inj.fired_count(0), 1, "arrival 3 is occurrence 7");

        inj.reset(3);
        run(&mut inj);
        assert_eq!(inj.fired_count(0), 0, "reset clears the preload");
    }
}
