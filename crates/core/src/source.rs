//! The representation-agnostic injection boundary: [`FaultSource`].
//!
//! The paper's binary SWIFI path generates [`FaultSpec`](crate::FaultSpec)
//! lists from compiler debug info and arms them on the VM at run time.
//! Source-level mutation instead bakes the fault into a recompiled
//! program. A campaign should not care which: it consumes a list of
//! prepared [`InjectionPlan`]s from an abstract fault source, runs each
//! plan's variant over a batch of inputs, and classifies failure modes
//! the same way for both representations.
//!
//! [`BinarySwifiSource`] wraps the existing §6.3 error-set generation
//! ([`generate_error_set`]) as one implementor; the source-mutation
//! implementor lives in `swifi-campaign` (it needs the compiler *and*
//! the campaign's compile cache).

use swifi_odc::DefectType;

use crate::locations::{generate_error_set, ErrorClass, GeneratedFault};
use swifi_lang::debug::DebugInfo;

/// How a plan's fault is realised at run time.
#[derive(Debug, Clone)]
pub enum PreparedFault {
    /// Arm this runtime fault on the shared base image (binary SWIFI:
    /// `FaultSpec` + `Injector::prepare` under the trigger budget).
    Runtime(GeneratedFault),
    /// Run this self-contained program clean — the fault is already baked
    /// into the compiled image (source-level mutation).
    Baked(Box<swifi_lang::Program>),
}

/// One prepared, runnable faulty variant of a target program.
#[derive(Debug, Clone)]
pub struct InjectionPlan {
    /// Stable identity of the fault (error label or mutant id).
    pub id: String,
    /// Campaign phase bucket (`"assign"`/`"check"` for binary SWIFI,
    /// the operator id for source mutation).
    pub group: String,
    /// ODC defect type of the fault this plan emulates.
    pub defect_type: DefectType,
    /// Source line of the fault location.
    pub line: u32,
    /// Enclosing function of the fault location.
    pub func: String,
    /// Per-plan seed component, mixed into each run's seed so random
    /// error values differ across plans deterministically.
    pub seed_salt: u64,
    /// The runnable fault.
    pub fault: PreparedFault,
}

/// An abstract source of prepared faults for one target program.
///
/// Implementations must be **seed-deterministic**: the same `seed` yields
/// the same plans in the same order, which is what lets checkpointed
/// campaigns resume by `(phase, index)`.
pub trait FaultSource {
    /// Representation name for reports (`"binary"`, `"source"`, …).
    fn representation(&self) -> &'static str;

    /// Enumerate the prepared plans under `seed`.
    ///
    /// # Errors
    ///
    /// Implementations return a message when preparation fails (e.g. a
    /// mutant that does not compile).
    fn plans(&self, seed: u64) -> Result<Vec<InjectionPlan>, String>;
}

/// The paper's §6.3 binary SWIFI path as a [`FaultSource`]: Table-3
/// error-set generation over the compiler's debug info.
///
/// Plans come out in the exact order `generate_error_set` produces them —
/// assignment faults (group `"assign"`) then checking faults (group
/// `"check"`) — so a campaign driven through this source is
/// observationally identical to one calling `generate_error_set`
/// directly.
#[derive(Debug, Clone)]
pub struct BinarySwifiSource {
    debug: DebugInfo,
    n_assign: usize,
    n_check: usize,
}

impl BinarySwifiSource {
    /// Wrap a program's debug info with the §6.3 location counts.
    pub fn new(debug: DebugInfo, n_assign: usize, n_check: usize) -> BinarySwifiSource {
        BinarySwifiSource {
            debug,
            n_assign,
            n_check,
        }
    }
}

/// ODC defect type of a Table-3 error class (the binary path only ever
/// reaches the two emulable types — the paper's point).
pub fn error_class_defect_type(error: ErrorClass) -> DefectType {
    match error {
        ErrorClass::Assign(_) => DefectType::Assignment,
        ErrorClass::Check(_) => DefectType::Checking,
    }
}

impl FaultSource for BinarySwifiSource {
    fn representation(&self) -> &'static str {
        "binary"
    }

    fn plans(&self, seed: u64) -> Result<Vec<InjectionPlan>, String> {
        let set = generate_error_set(&self.debug, self.n_assign, self.n_check, seed);
        let wrap = |group: &str, f: &GeneratedFault| InjectionPlan {
            id: format!("{}@{}:{}", f.error.label(), f.func, f.line),
            group: group.to_string(),
            defect_type: error_class_defect_type(f.error),
            line: f.line,
            func: f.func.clone(),
            seed_salt: f.site_addr as u64,
            fault: PreparedFault::Runtime(f.clone()),
        };
        Ok(set
            .assign_faults
            .iter()
            .map(|f| wrap("assign", f))
            .chain(set.check_faults.iter().map(|f| wrap("check", f)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_lang::compile;

    const SRC: &str = "void main() {
        int i;
        int s;
        s = 0;
        for (i = 0; i < 5; i = i + 1) {
            if (i % 2 == 0) { s = s + i; }
        }
        print_int(s);
    }";

    #[test]
    fn binary_source_mirrors_generate_error_set() {
        let p = compile(SRC).unwrap();
        let src = BinarySwifiSource::new(p.debug.clone(), 2, 2);
        let plans = src.plans(7).unwrap();
        let set = generate_error_set(&p.debug, 2, 2, 7);
        assert_eq!(
            plans.len(),
            set.assign_faults.len() + set.check_faults.len()
        );
        // Same faults, same order, groups split at the assign/check seam.
        for (plan, fault) in plans
            .iter()
            .zip(set.assign_faults.iter().chain(set.check_faults.iter()))
        {
            let PreparedFault::Runtime(g) = &plan.fault else {
                panic!("binary plans are runtime faults");
            };
            assert_eq!(g, fault);
            assert_eq!(plan.seed_salt, fault.site_addr as u64);
            let expect_group = match fault.error {
                ErrorClass::Assign(_) => "assign",
                ErrorClass::Check(_) => "check",
            };
            assert_eq!(plan.group, expect_group);
        }
    }

    #[test]
    fn binary_plans_are_seed_deterministic() {
        let p = compile(SRC).unwrap();
        let src = BinarySwifiSource::new(p.debug.clone(), 3, 3);
        let a: Vec<String> = src.plans(9).unwrap().into_iter().map(|p| p.id).collect();
        let b: Vec<String> = src.plans(9).unwrap().into_iter().map(|p| p.id).collect();
        assert_eq!(a, b);
        assert_eq!(src.representation(), "binary");
    }

    #[test]
    fn binary_plans_cover_only_emulable_defect_types() {
        // The paper's argument in type form: every binary plan is
        // Assignment or Checking — Algorithm/Function are out of reach.
        let p = compile(SRC).unwrap();
        let src = BinarySwifiSource::new(p.debug.clone(), 4, 4);
        for plan in src.plans(3).unwrap() {
            assert!(matches!(
                plan.defect_type,
                DefectType::Assignment | DefectType::Checking
            ));
        }
    }
}
