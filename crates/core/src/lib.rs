//! # swifi-core — the Xception-model software fault injector
//!
//! The primary contribution of the reproduced paper — *Madeira, Costa,
//! Vieira, "On the Emulation of Software Faults by Software Fault
//! Injection" (DSN 2000)* — is an experimental method for judging whether
//! a SWIFI tool can emulate *software* faults. This crate implements that
//! method's machinery:
//!
//! - [`fault`] — the What/Where/Which/When fault model (§3): bit-level
//!   [`ErrorOp`](fault::ErrorOp)s applied to architectural
//!   [`Target`](fault::Target)s, activated by
//!   [`Trigger`](fault::Trigger)s with a [`Firing`](fault::Firing)
//!   schedule;
//! - [`injector`] — [`Injector`](injector::Injector) compiles a fault set
//!   onto the VM's inspector hooks, enforcing the PowerPC 601's
//!   two-breakpoint-register budget that shapes the paper's findings;
//! - [`emulate`] — the §5 analysis: diff a corrected binary against the
//!   real faulty one and classify emulability (classes A / B / C);
//! - [`locations`] — the §6.3 procedure: enumerate assignment/checking
//!   locations from compiler debug info, choose a random subset, and
//!   generate every applicable Table-3 error type per location;
//! - [`source`] — the representation-agnostic [`FaultSource`] boundary:
//!   campaigns consume prepared [`InjectionPlan`]s whether the fault is a
//!   runtime spec armed on the base image or a recompiled source-level
//!   mutant.
//!
//! # Example: inject a checking error generated from source locations
//!
//! ```
//! use swifi_core::injector::{Injector, TriggerMode};
//! use swifi_core::locations::generate_error_set;
//! use swifi_lang::compile;
//! use swifi_vm::{Machine, MachineConfig};
//!
//! let program = compile(
//!     "void main() {
//!        int i;
//!        for (i = 0; i < 3; i = i + 1) { print_int(i); }
//!      }",
//! ).unwrap();
//! let set = generate_error_set(&program.debug, 0, 1, 42);
//! let fault = &set.check_faults[0]; // `<` → `<=` on the loop condition
//! let mut injector = Injector::new(vec![fault.spec], TriggerMode::Hardware, 0).unwrap();
//! let mut m = Machine::new(MachineConfig::default());
//! m.load(&program.image);
//! injector.prepare(&mut m).unwrap();
//! let outcome = m.run(&mut injector);
//! assert_eq!(outcome.output(), b"0123"); // one extra iteration
//! ```

#![warn(missing_docs)]

pub mod emulate;
pub mod fault;
pub mod injector;
pub mod locations;
pub mod source;

pub use emulate::{emulation_faults, plan_emulation, EmulationStrategy, EmulationVerdict};
pub use fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
pub use injector::{
    Injector, InjectorError, PreparedWrite, PreparedWrites, TriggerMode, HW_BREAKPOINTS,
};
pub use locations::{generate_error_set, ErrorClass, ErrorSet, GeneratedFault, LocationPlan};
pub use source::{BinarySwifiSource, FaultSource, InjectionPlan, PreparedFault};
