//! Fault specifications: the What / Where / Which / When model.
//!
//! The paper (§3) decomposes a SWIFI fault into four attributes:
//!
//! - **What** should be corrupted — the bit-level [`ErrorOp`];
//! - **Where** the corruption applies — the architectural [`Target`]
//!   (instruction bus, data bus, address bus, GPR, memory);
//! - **Which** instruction or event acts as the fault trigger —
//!   [`Trigger`];
//! - **When**, over the repeated executions of the trigger, the fault
//!   actually fires — [`Firing`].
//!
//! The What/Where pair expresses the *fault type*; the Which/When pair the
//! *fault trigger* — the distinction the paper argues should be evaluated
//! independently.

use serde::{Deserialize, Serialize};

/// The bit-level corruption applied to an in-flight 32-bit value (What).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorOp {
    /// XOR with a mask (bit flips).
    Xor(u32),
    /// AND with a mask (bit resets).
    And(u32),
    /// OR with a mask (bit sets).
    Or(u32),
    /// Two's-complement addition of a (possibly negative) delta.
    Add(i32),
    /// Replace the value outright.
    Replace(u32),
    /// Replace with a per-run random value (drawn from the injector's
    /// seeded RNG at fire time).
    ReplaceRandom,
}

impl ErrorOp {
    /// Apply the operation to `value`, using `random` for
    /// [`ErrorOp::ReplaceRandom`].
    pub fn apply(self, value: u32, random: u32) -> u32 {
        match self {
            ErrorOp::Xor(m) => value ^ m,
            ErrorOp::And(m) => value & m,
            ErrorOp::Or(m) => value | m,
            ErrorOp::Add(d) => value.wrapping_add(d as u32),
            ErrorOp::Replace(v) => v,
            ErrorOp::ReplaceRandom => random,
        }
    }
}

/// The architectural location the corruption applies to (Where).
///
/// These are the "processor functional units" of the Xception fault model,
/// mapped onto the [`swifi_vm::Inspector`] hook surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// The instruction word on its way from memory to the decoder; memory
    /// itself is unchanged.
    InstrBus,
    /// The instruction word *in memory* (patched when the trigger first
    /// fires; persists for the rest of the run).
    InstrMemory,
    /// The value arriving from memory on a load.
    DataBusLoad,
    /// The value leaving for memory on a store.
    DataBusStore,
    /// The effective address of a load (address bus, inbound).
    LoadAddress,
    /// The effective address of a store (address bus, outbound).
    StoreAddress,
    /// A general-purpose register, corrupted at write-back.
    Gpr(u8),
    /// A word in memory, corrupted when the trigger fires.
    Memory(u32),
}

/// The event that activates the fault (Which).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trigger {
    /// An opcode fetch from the given code address. Consumes an
    /// instruction-address breakpoint register.
    OpcodeFetch(u32),
    /// A load whose effective address equals the given value. Consumes a
    /// data-address breakpoint register.
    OperandLoad(u32),
    /// A store whose effective address equals the given value. Consumes a
    /// data-address breakpoint register.
    OperandStore(u32),
    /// The N-th retired instruction (temporal trigger; no breakpoint
    /// register needed — Xception uses the decrementer for these).
    AfterInstructions(u64),
    /// Every matching event, unconditionally (no breakpoint register;
    /// only usable in intrusive mode because real hardware cannot watch
    /// everything at once).
    Always,
}

impl Trigger {
    /// Which breakpoint register class this trigger occupies, if any.
    pub fn breakpoint_class(self) -> Option<BreakpointClass> {
        match self {
            Trigger::OpcodeFetch(_) => Some(BreakpointClass::Instruction),
            Trigger::OperandLoad(_) | Trigger::OperandStore(_) => Some(BreakpointClass::Data),
            Trigger::AfterInstructions(_) | Trigger::Always => None,
        }
    }
}

/// The two kinds of hardware breakpoint resources on the modelled
/// PowerPC 601 (one instruction-address and one data-address register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BreakpointClass {
    /// Instruction-address breakpoint (IABR-like).
    Instruction,
    /// Data-address breakpoint (DABR-like).
    Data,
}

/// How many trigger occurrences actually fire the fault (When).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Firing {
    /// Only the first occurrence.
    First,
    /// Every occurrence (the mode used throughout the paper's §6
    /// campaigns: "the fault was inserted every time the trigger
    /// instruction was executed").
    EveryTime,
    /// Only the k-th occurrence (1-based).
    Nth(u64),
}

impl Firing {
    /// Whether occurrence number `n` (1-based) fires.
    pub fn fires(self, n: u64) -> bool {
        match self {
            Firing::First => n == 1,
            Firing::EveryTime => true,
            Firing::Nth(k) => n == k,
        }
    }
}

/// A complete fault specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// What to corrupt.
    pub what: ErrorOp,
    /// Where the corruption lands.
    pub target: Target,
    /// Which event triggers it.
    pub trigger: Trigger,
    /// When (over trigger occurrences) it fires.
    pub when: Firing,
}

impl FaultSpec {
    /// Convenience constructor for the most common §6 shape: corrupt the
    /// given instruction word on every fetch.
    pub fn replace_instr(addr: u32, word: u32) -> FaultSpec {
        FaultSpec {
            what: ErrorOp::Replace(word),
            target: Target::InstrBus,
            trigger: Trigger::OpcodeFetch(addr),
            when: Firing::EveryTime,
        }
    }

    /// The prefix-fork resume point of this spec, if it has one: the
    /// trigger PC and the (1-based) trigger occurrence at which the fault
    /// first fires.
    ///
    /// A spec is forkable when its entire pre-first-fire behaviour is
    /// architecturally invisible, so a golden run paused just before that
    /// occurrence is state-identical to an injected run at the same
    /// point. That requires an [`Trigger::OpcodeFetch`] trigger (purely
    /// counting until it fires) and a non-[`Target::Memory`] target
    /// (memory faults are pre-applied by `Injector::prepare` and perturb
    /// the prefix itself). `Firing::Nth(0)` never fires and returns
    /// `None`.
    pub fn fork_point(&self) -> Option<(u32, u64)> {
        if matches!(self.target, Target::Memory(_)) {
            return None;
        }
        let Trigger::OpcodeFetch(pc) = self.trigger else {
            return None;
        };
        match self.when {
            Firing::First | Firing::EveryTime => Some((pc, 1)),
            Firing::Nth(0) => None,
            Firing::Nth(k) => Some((pc, k)),
        }
    }

    /// Whether this spec is internally consistent (e.g. a data-bus target
    /// needs an instruction or temporal trigger that can observe it).
    pub fn validate(&self) -> Result<(), String> {
        match (self.target, self.trigger) {
            (
                Target::InstrBus | Target::InstrMemory,
                Trigger::OperandLoad(_) | Trigger::OperandStore(_),
            ) => Err("instruction targets cannot use data-address triggers".to_string()),
            (Target::Memory(_), Trigger::Always) => {
                Err("memory-resident faults need a concrete trigger".to_string())
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_ops_apply() {
        assert_eq!(ErrorOp::Xor(0b1010).apply(0b0110, 0), 0b1100);
        assert_eq!(ErrorOp::And(0xFF).apply(0x1234, 0), 0x34);
        assert_eq!(ErrorOp::Or(0x100).apply(0x34, 0), 0x134);
        assert_eq!(ErrorOp::Add(-1).apply(0, 0), u32::MAX);
        assert_eq!(ErrorOp::Replace(7).apply(123, 0), 7);
        assert_eq!(ErrorOp::ReplaceRandom.apply(123, 0xBEEF), 0xBEEF);
    }

    #[test]
    fn firing_schedules() {
        assert!(Firing::First.fires(1));
        assert!(!Firing::First.fires(2));
        assert!(Firing::EveryTime.fires(1) && Firing::EveryTime.fires(1000));
        assert!(Firing::Nth(3).fires(3));
        assert!(!Firing::Nth(3).fires(2) && !Firing::Nth(3).fires(4));
    }

    #[test]
    fn breakpoint_classes() {
        assert_eq!(
            Trigger::OpcodeFetch(0x100).breakpoint_class(),
            Some(BreakpointClass::Instruction)
        );
        assert_eq!(
            Trigger::OperandLoad(0x200).breakpoint_class(),
            Some(BreakpointClass::Data)
        );
        assert_eq!(Trigger::AfterInstructions(5).breakpoint_class(), None);
    }

    #[test]
    fn validation_rejects_inconsistent_specs() {
        let bad = FaultSpec {
            what: ErrorOp::Xor(1),
            target: Target::InstrBus,
            trigger: Trigger::OperandLoad(0x300),
            when: Firing::EveryTime,
        };
        assert!(bad.validate().is_err());
        assert!(FaultSpec::replace_instr(0x100, 0).validate().is_ok());
    }

    #[test]
    fn fork_points() {
        let base = FaultSpec::replace_instr(0x104, 0);
        assert_eq!(base.fork_point(), Some((0x104, 1)));
        assert_eq!(
            FaultSpec {
                when: Firing::First,
                ..base
            }
            .fork_point(),
            Some((0x104, 1))
        );
        assert_eq!(
            FaultSpec {
                when: Firing::Nth(9),
                ..base
            }
            .fork_point(),
            Some((0x104, 9))
        );
        assert_eq!(
            FaultSpec {
                when: Firing::Nth(0),
                ..base
            }
            .fork_point(),
            None,
            "Nth(0) never fires"
        );
        assert_eq!(
            FaultSpec {
                target: Target::Memory(0x8000),
                ..base
            }
            .fork_point(),
            None,
            "memory faults perturb the prefix via prepare()"
        );
        assert_eq!(
            FaultSpec {
                trigger: Trigger::AfterInstructions(10),
                ..base
            }
            .fork_point(),
            None,
            "only opcode-fetch triggers are forkable"
        );
    }

    #[test]
    fn serde_round_trip() {
        let f = FaultSpec::replace_instr(0x104, 0xDEADBEEF);
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(f, serde_json::from_str(&json).unwrap());
    }
}
