//! Emulation of *specific real* software faults (paper §5).
//!
//! A software fault is characterised by the source change that corrects it.
//! Given the **faulty** and **corrected** binaries of the same program,
//! this module answers the paper's question: *can a SWIFI tool make the
//! corrected binary behave exactly like the faulty one?*
//!
//! The analysis is the machine-level one the paper performed by hand:
//!
//! - identical code ⇒ nothing to emulate;
//! - same instruction count with `k` differing words ⇒ the fault is
//!   reachable by corrupting those `k` fetches; whether *hardware*
//!   triggering suffices depends on `k` vs the two breakpoint registers
//!   (assignment faults like C.team4 and checking faults like C.team1 have
//!   `k = 1`; stack-shift faults like JB.team6 have `k` ≫ 2);
//! - different instruction counts ⇒ the correction restructures the code,
//!   which no machine-code-level SWIFI tool can emulate (algorithm and
//!   function faults — the paper's ≈ 44 %).

use serde::{Deserialize, Serialize};
use swifi_vm::mem::Image;

use crate::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};
use crate::injector::HW_BREAKPOINTS;

/// One instruction word that differs between corrected and faulty code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordDiff {
    /// Guest address of the instruction.
    pub addr: u32,
    /// The corrected program's word.
    pub corrected: u32,
    /// The faulty program's word.
    pub faulty: u32,
}

/// The §5 verdict for one real fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmulationVerdict {
    /// The two binaries are identical — nothing to emulate.
    Identical,
    /// Emulable within the hardware trigger budget (paper class **A**).
    Emulable {
        /// The differing instruction words.
        diffs: Vec<WordDiff>,
    },
    /// Emulable in principle, but the required trigger count exceeds the
    /// hardware breakpoint registers; needs intrusive traps and heavy
    /// manual definition (paper class **B** — e.g. JB.team6's stack
    /// shift).
    BreakpointBudgetExceeded {
        /// The differing instruction words.
        diffs: Vec<WordDiff>,
        /// Distinct trigger addresses required.
        required_triggers: usize,
    },
    /// The correction changes the code's structure (instruction count or
    /// data layout); beyond any SWIFI tool (paper class **C** — algorithm
    /// and function faults).
    NotEmulable {
        /// Corrected program's instruction count.
        corrected_len: usize,
        /// Faulty program's instruction count.
        faulty_len: usize,
    },
}

impl EmulationVerdict {
    /// Paper §5 class letter: `A` emulable, `B` budget-limited, `C`
    /// impossible (identical binaries report `-`).
    pub fn class(&self) -> char {
        match self {
            EmulationVerdict::Identical => '-',
            EmulationVerdict::Emulable { .. } => 'A',
            EmulationVerdict::BreakpointBudgetExceeded { .. } => 'B',
            EmulationVerdict::NotEmulable { .. } => 'C',
        }
    }
}

/// Compare the corrected and faulty builds of a program and classify the
/// fault's emulability (paper §5).
pub fn plan_emulation(corrected: &Image, faulty: &Image) -> EmulationVerdict {
    if corrected.code.len() != faulty.code.len() || corrected.data.len() != faulty.data.len() {
        return EmulationVerdict::NotEmulable {
            corrected_len: corrected.code.len(),
            faulty_len: faulty.code.len(),
        };
    }
    let mut diffs = Vec::new();
    for (i, (&c, &f)) in corrected.code.iter().zip(&faulty.code).enumerate() {
        if c != f {
            diffs.push(WordDiff {
                addr: corrected.addr_of(i),
                corrected: c,
                faulty: f,
            });
        }
    }
    // Differing initialised data would also require memory faults; treat a
    // data diff like extra trigger addresses (each word is one patch).
    let data_diffs = corrected
        .data
        .iter()
        .zip(&faulty.data)
        .filter(|(c, f)| c != f)
        .count();
    if diffs.is_empty() && data_diffs == 0 {
        return EmulationVerdict::Identical;
    }
    let required = diffs.len() + data_diffs;
    if required <= HW_BREAKPOINTS && data_diffs == 0 {
        EmulationVerdict::Emulable { diffs }
    } else {
        EmulationVerdict::BreakpointBudgetExceeded {
            diffs,
            required_triggers: required,
        }
    }
}

/// Emulation strategy, mirroring the two recipes the paper gives in its
/// Figures 3 and 5 for each emulable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmulationStrategy {
    /// Change the instruction *in memory*, triggered once at program start
    /// (the paper's "error inserted in memory at the location of the
    /// instruction to be changed").
    MemoryResident,
    /// Corrupt the fetched word *every time the instruction is executed*
    /// (the paper's "changing the fetched operand / data bus fault").
    FetchCorruption,
}

/// Build the fault set that emulates the planned diffs with the given
/// strategy. The result can be armed with
/// [`Injector::new`](crate::injector::Injector::new); hardware mode will
/// accept it exactly when the verdict was
/// [`EmulationVerdict::Emulable`].
pub fn emulation_faults(diffs: &[WordDiff], strategy: EmulationStrategy) -> Vec<FaultSpec> {
    diffs
        .iter()
        .map(|d| match strategy {
            EmulationStrategy::MemoryResident => FaultSpec {
                what: ErrorOp::Replace(d.faulty),
                target: Target::InstrMemory,
                trigger: Trigger::OpcodeFetch(d.addr),
                when: Firing::First,
            },
            EmulationStrategy::FetchCorruption => FaultSpec {
                what: ErrorOp::Replace(d.faulty),
                target: Target::InstrBus,
                trigger: Trigger::OpcodeFetch(d.addr),
                when: Firing::EveryTime,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_lang::compile;

    #[test]
    fn identical_programs() {
        let a = compile("void main() { print_int(1); }").unwrap();
        let b = compile("void main() { print_int(1); }").unwrap();
        assert_eq!(
            plan_emulation(&a.image, &b.image),
            EmulationVerdict::Identical
        );
    }

    #[test]
    fn single_constant_fault_is_class_a() {
        // The C.team4 shape: an off-by-one loop bound — one word differs.
        let corrected =
            compile("void main() { int i; for (i = 0; i < 5; i = i + 1) { print_int(i); } }")
                .unwrap();
        let faulty =
            compile("void main() { int i; for (i = 1; i < 5; i = i + 1) { print_int(i); } }")
                .unwrap();
        match plan_emulation(&corrected.image, &faulty.image) {
            EmulationVerdict::Emulable { diffs } => assert_eq!(diffs.len(), 1),
            other => panic!("expected class A, got {other:?}"),
        }
    }

    #[test]
    fn checking_operator_fault_is_class_a() {
        // The C.team1 shape: `<` vs `<=` — one bc word differs.
        let corrected =
            compile("void main() { int i; for (i = 0; i <= 5; i = i + 1) { print_int(i); } }")
                .unwrap();
        let faulty =
            compile("void main() { int i; for (i = 0; i < 5; i = i + 1) { print_int(i); } }")
                .unwrap();
        match plan_emulation(&corrected.image, &faulty.image) {
            EmulationVerdict::Emulable { diffs } => assert_eq!(diffs.len(), 1),
            other => panic!("expected class A, got {other:?}"),
        }
    }

    #[test]
    fn stack_shift_fault_exceeds_budget() {
        // The JB.team6 shape: a buffer one byte short shifts every later
        // sp-relative reference — same code length, many differing words.
        let corrected = compile(
            "void main() {
               char phrase[81]; char phrase2[81];
               int i;
               for (i = 0; i < 3; i = i + 1) { phrase[i] = 'a'; phrase2[i] = 'b'; }
               phrase[3] = 0; phrase2[3] = 0;
               print_str(phrase); print_str(phrase2);
             }",
        )
        .unwrap();
        let faulty = compile(
            "void main() {
               char phrase[80]; char phrase2[81];
               int i;
               for (i = 0; i < 3; i = i + 1) { phrase[i] = 'a'; phrase2[i] = 'b'; }
               phrase[3] = 0; phrase2[3] = 0;
               print_str(phrase); print_str(phrase2);
             }",
        )
        .unwrap();
        match plan_emulation(&corrected.image, &faulty.image) {
            EmulationVerdict::BreakpointBudgetExceeded {
                required_triggers, ..
            } => {
                assert!(required_triggers > 2, "stack shift needs many triggers");
            }
            other => panic!("expected class B, got {other:?}"),
        }
    }

    #[test]
    fn algorithm_fault_is_class_c() {
        // The C.team5 shape: sum of two values instead of the max — the
        // correction changes the code structure.
        let corrected = compile(
            "int dist(int dx, int dy) {
               int ax; int ay;
               ax = (dx > 0) ? dx : -dx;
               ay = (dy > 0) ? dy : -dy;
               return (ax > ay) ? ax : ay;
             }
             void main() { print_int(dist(-3, 4)); }",
        )
        .unwrap();
        let faulty = compile(
            "int dist(int dx, int dy) {
               int ax; int ay;
               ax = (dx > 0) ? dx : -dx;
               ay = (dy > 0) ? dy : -dy;
               return ax + ay;
             }
             void main() { print_int(dist(-3, 4)); }",
        )
        .unwrap();
        match plan_emulation(&corrected.image, &faulty.image) {
            EmulationVerdict::NotEmulable {
                corrected_len,
                faulty_len,
            } => {
                assert_ne!(corrected_len, faulty_len);
            }
            other => panic!("expected class C, got {other:?}"),
        }
    }

    #[test]
    fn emulation_reproduces_faulty_behavior_exactly() {
        use crate::injector::{Injector, TriggerMode};
        use swifi_vm::machine::{Machine, MachineConfig};
        use swifi_vm::Noop;

        let corrected =
            compile("void main() { int i; for (i = 0; i <= 4; i = i + 1) { print_int(i); } }")
                .unwrap();
        let faulty =
            compile("void main() { int i; for (i = 1; i <= 4; i = i + 1) { print_int(i); } }")
                .unwrap();
        let diffs = match plan_emulation(&corrected.image, &faulty.image) {
            EmulationVerdict::Emulable { diffs } => diffs,
            other => panic!("{other:?}"),
        };
        for strategy in [
            EmulationStrategy::MemoryResident,
            EmulationStrategy::FetchCorruption,
        ] {
            let faults = emulation_faults(&diffs, strategy);
            let mut inj = Injector::new(faults, TriggerMode::Hardware, 0).unwrap();
            let mut m = Machine::new(MachineConfig::default());
            m.load(&corrected.image);
            inj.prepare(&mut m).unwrap();
            let emulated = m.run(&mut inj);

            let mut m2 = Machine::new(MachineConfig::default());
            m2.load(&faulty.image);
            let real = m2.run(&mut Noop);
            assert_eq!(emulated.output(), real.output(), "strategy {strategy:?}");
        }
    }

    #[test]
    fn verdict_classes() {
        assert_eq!(EmulationVerdict::Identical.class(), '-');
        assert_eq!(EmulationVerdict::Emulable { diffs: vec![] }.class(), 'A');
        assert_eq!(
            EmulationVerdict::BreakpointBudgetExceeded {
                diffs: vec![],
                required_triggers: 5
            }
            .class(),
            'B'
        );
        assert_eq!(
            EmulationVerdict::NotEmulable {
                corrected_len: 10,
                faulty_len: 12
            }
            .class(),
            'C'
        );
    }
}
