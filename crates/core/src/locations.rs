//! Error-set generation for fault *classes* (paper §6.3).
//!
//! The paper's five-step procedure, mechanised:
//!
//! 1. all possible fault locations are enumerated — here straight from the
//!    compiler's [`DebugInfo`] instead of "manually at the assembly level";
//! 2. a random subset of locations is chosen (*where*);
//! 3. every applicable Table-3 error type is generated per location
//!    (*what*);
//! 4. the trigger is the location's own instruction (*which*);
//! 5. the fault fires on every execution of the trigger (*when*).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use swifi_lang::debug::{AssignSite, CheckMutation, CheckSite, DebugInfo};
use swifi_odc::{AssignErrorType, CheckErrorType};
use swifi_vm::isa::NOP;

use crate::fault::{ErrorOp, FaultSpec, Firing, Target, Trigger};

/// Which Table-3 error a generated fault realises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// An assignment error type (Figure 9 families).
    Assign(AssignErrorType),
    /// A checking error type (Figure 10 families).
    Check(CheckErrorType),
}

impl ErrorClass {
    /// Paper-notation label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Assign(a) => a.label(),
            ErrorClass::Check(c) => c.label(),
        }
    }
}

/// One injectable fault generated from a source location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedFault {
    /// The machine-level fault.
    pub spec: FaultSpec,
    /// The Table-3 error type it realises.
    pub error: ErrorClass,
    /// Source line of the location.
    pub line: u32,
    /// Enclosing function.
    pub func: String,
    /// Guest address of the location (store or branch instruction).
    pub site_addr: u32,
}

/// The location-selection summary (one program row of the paper's Table 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationPlan {
    /// All possible assignment locations in the program.
    pub possible_assign: usize,
    /// All possible checking locations.
    pub possible_check: usize,
    /// Chosen assignment-site indices (into `DebugInfo::assigns`).
    pub chosen_assign: Vec<usize>,
    /// Chosen checking-site indices (into `DebugInfo::checks`).
    pub chosen_check: Vec<usize>,
}

/// Choose `n_assign` assignment and `n_check` checking locations uniformly
/// at random (steps 1–2 of the procedure). Counts are clamped to the
/// available sites; selection order is randomised but the returned indices
/// are sorted for reproducible reporting.
pub fn choose_locations(
    debug: &DebugInfo,
    n_assign: usize,
    n_check: usize,
    seed: u64,
) -> LocationPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let pick = |rng: &mut StdRng, total: usize, n: usize| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..total).collect();
        idx.shuffle(rng);
        idx.truncate(n.min(total));
        idx.sort_unstable();
        idx
    };
    let chosen_assign = pick(&mut rng, debug.assigns.len(), n_assign);
    let chosen_check = pick(&mut rng, debug.checks.len(), n_check);
    LocationPlan {
        possible_assign: debug.assigns.len(),
        possible_check: debug.checks.len(),
        chosen_assign,
        chosen_check,
    }
}

/// Restrict a plan's chosen sites to the given functions (used by the
/// §6.1 metrics-guided and field-data-guided allocation strategies).
pub fn restrict_to_functions(debug: &DebugInfo, plan: &mut LocationPlan, funcs: &[String]) {
    plan.chosen_assign
        .retain(|&i| funcs.contains(&debug.assigns[i].func));
    plan.chosen_check
        .retain(|&i| funcs.contains(&debug.checks[i].func));
}

/// All four assignment error types for one assignment location
/// (steps 3–5).
pub fn assign_faults_for(site: &AssignSite) -> Vec<GeneratedFault> {
    AssignErrorType::ALL
        .iter()
        .map(|&err| {
            let spec = match err {
                AssignErrorType::ValuePlusOne => FaultSpec {
                    what: ErrorOp::Add(1),
                    target: Target::DataBusStore,
                    trigger: Trigger::OpcodeFetch(site.store_addr),
                    when: Firing::EveryTime,
                },
                AssignErrorType::ValueMinusOne => FaultSpec {
                    what: ErrorOp::Add(-1),
                    target: Target::DataBusStore,
                    trigger: Trigger::OpcodeFetch(site.store_addr),
                    when: Firing::EveryTime,
                },
                AssignErrorType::NoAssign => FaultSpec {
                    what: ErrorOp::Replace(NOP),
                    target: Target::InstrBus,
                    trigger: Trigger::OpcodeFetch(site.store_addr),
                    when: Firing::EveryTime,
                },
                AssignErrorType::Random => FaultSpec {
                    what: ErrorOp::ReplaceRandom,
                    target: Target::DataBusStore,
                    trigger: Trigger::OpcodeFetch(site.store_addr),
                    when: Firing::EveryTime,
                },
            };
            GeneratedFault {
                spec,
                error: ErrorClass::Assign(err),
                line: site.line,
                func: site.func.clone(),
                site_addr: site.store_addr,
            }
        })
        .collect()
}

/// Every applicable checking error type for one checking location
/// (steps 3–5). Applicability depends on the condition's actual operators,
/// exactly as the paper notes for its Table 3.
pub fn check_faults_for(site: &CheckSite) -> Vec<GeneratedFault> {
    site.mutations
        .iter()
        .map(|&(err, m)| {
            let spec = match m {
                CheckMutation::ReplaceWord { addr, word } => FaultSpec {
                    what: ErrorOp::Replace(word),
                    target: Target::InstrBus,
                    trigger: Trigger::OpcodeFetch(addr),
                    when: Firing::EveryTime,
                },
                CheckMutation::AdjustLoadAddr { addr, delta } => FaultSpec {
                    what: ErrorOp::Add(delta),
                    target: Target::LoadAddress,
                    trigger: Trigger::OpcodeFetch(addr),
                    when: Firing::EveryTime,
                },
            };
            GeneratedFault {
                spec,
                error: ErrorClass::Check(err),
                line: site.line,
                func: site.func.clone(),
                site_addr: site.branch_addr,
            }
        })
        .collect()
}

/// The full §6.3 error set for a program: chosen locations × applicable
/// error types.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSet {
    /// The location selection (Table 4 row).
    pub plan: LocationPlan,
    /// Generated assignment faults.
    pub assign_faults: Vec<GeneratedFault>,
    /// Generated checking faults.
    pub check_faults: Vec<GeneratedFault>,
}

/// Generate the error set for a compiled program.
pub fn generate_error_set(
    debug: &DebugInfo,
    n_assign: usize,
    n_check: usize,
    seed: u64,
) -> ErrorSet {
    let plan = choose_locations(debug, n_assign, n_check, seed);
    let assign_faults = plan
        .chosen_assign
        .iter()
        .flat_map(|&i| assign_faults_for(&debug.assigns[i]))
        .collect();
    let check_faults = plan
        .chosen_check
        .iter()
        .flat_map(|&i| check_faults_for(&debug.checks[i]))
        .collect();
    ErrorSet {
        plan,
        assign_faults,
        check_faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_lang::compile;

    const SRC: &str = "
        int seen[10];
        void main() {
          int i; int s;
          s = 0;
          for (i = 0; i < 10; i = i + 1) {
            if (seen[i] == 0) { s = s + 1; }
            if (i > 2 && s < 5) { s = s + 2; }
          }
          print_int(s);
        }";

    #[test]
    fn all_locations_enumerated() {
        let p = compile(SRC).unwrap();
        // Assignments: s=0, i=0 (for init), i=i+1 (step), s=s+1, s=s+2.
        assert_eq!(p.debug.assigns.len(), 5);
        // Checks: for cond, if ==, if &&.
        assert_eq!(p.debug.checks.len(), 3);
    }

    #[test]
    fn choose_is_deterministic_and_clamped() {
        let p = compile(SRC).unwrap();
        let a = choose_locations(&p.debug, 3, 2, 7);
        let b = choose_locations(&p.debug, 3, 2, 7);
        assert_eq!(a, b);
        assert_eq!(a.chosen_assign.len(), 3);
        assert_eq!(a.chosen_check.len(), 2);
        let c = choose_locations(&p.debug, 100, 100, 7);
        assert_eq!(c.chosen_assign.len(), 5);
        assert_eq!(c.chosen_check.len(), 3);
        assert_eq!(c.possible_assign, 5);
        assert_eq!(c.possible_check, 3);
    }

    #[test]
    fn different_seeds_differ() {
        let p = compile(SRC).unwrap();
        let picks: Vec<_> = (0..20)
            .map(|s| choose_locations(&p.debug, 2, 2, s).chosen_assign)
            .collect();
        assert!(
            picks.windows(2).any(|w| w[0] != w[1]),
            "selection should vary with seed"
        );
    }

    #[test]
    fn assignment_locations_get_four_error_types() {
        let p = compile(SRC).unwrap();
        for site in &p.debug.assigns {
            let faults = assign_faults_for(site);
            assert_eq!(
                faults.len(),
                4,
                "paper: four faults per assignment location"
            );
            // All four trigger on the same store instruction.
            for f in &faults {
                assert_eq!(f.spec.trigger, Trigger::OpcodeFetch(site.store_addr));
                assert_eq!(f.spec.when, Firing::EveryTime);
            }
        }
    }

    #[test]
    fn checking_error_count_depends_on_condition() {
        let p = compile(SRC).unwrap();
        let counts: Vec<usize> = p
            .debug
            .checks
            .iter()
            .map(|c| check_faults_for(c).len())
            .collect();
        // The `==`-over-array condition must offer more error types than
        // the simple `<` loop condition.
        let lt_site = check_faults_for(&p.debug.checks[0]).len();
        assert!(counts.iter().any(|&c| c > lt_site));
    }

    #[test]
    fn error_set_size_is_locations_times_types() {
        let p = compile(SRC).unwrap();
        let set = generate_error_set(&p.debug, 5, 0, 1);
        assert_eq!(set.assign_faults.len(), 5 * 4);
        assert!(set.check_faults.is_empty());
    }

    #[test]
    fn restrict_to_functions_filters() {
        let p = compile(
            "int f(int x) { int y; y = x + 1; return y; }
             void main() { int a; a = f(2); if (a > 0) { print_int(a); } }",
        )
        .unwrap();
        let mut plan = choose_locations(&p.debug, 10, 10, 0);
        restrict_to_functions(&p.debug, &mut plan, &["f".to_string()]);
        for &i in &plan.chosen_assign {
            assert_eq!(p.debug.assigns[i].func, "f");
        }
        assert!(plan.chosen_check.is_empty(), "the only check is in main");
    }

    #[test]
    fn generated_faults_are_injectable() {
        use crate::injector::{Injector, TriggerMode};
        let p = compile(SRC).unwrap();
        let set = generate_error_set(&p.debug, 2, 2, 3);
        for f in set.assign_faults.iter().chain(&set.check_faults) {
            // One fault per run, as in the paper: always within budget.
            Injector::new(vec![f.spec], TriggerMode::Hardware, 0)
                .unwrap_or_else(|e| panic!("{:?} not injectable: {e}", f.error));
        }
    }
}
