//! # swifi-bench — reproduction and performance benches
//!
//! Two bench targets:
//!
//! - `repro` (custom harness): regenerates **every table and figure** of
//!   the reproduced paper. Run all of it with
//!   `cargo bench -p swifi-bench --bench repro`, or one artefact with e.g.
//!   `cargo bench -p swifi-bench --bench repro -- fig7`. Set `REPRO_FULL=1`
//!   for the paper's full scale (300 inputs per fault, >100 000 runs).
//!   Results are also dumped as JSON under `target/repro/`.
//! - `perf` (criterion): microbenchmarks of the VM interpreter, compiler,
//!   injector overhead, and campaign throughput.

#![warn(missing_docs)]

use std::path::PathBuf;

/// Directory where the repro harness writes machine-readable results:
/// `<workspace root>/target/repro`, regardless of the bench's working
/// directory.
pub fn repro_output_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target/repro");
    std::fs::create_dir_all(&dir).expect("create target/repro");
    dir
}

/// Persist a JSON artefact under `target/repro/<name>.json`.
pub fn dump_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = repro_output_dir().join(format!("{name}.json"));
    let data = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(&path, data).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}
