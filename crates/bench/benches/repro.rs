//! The reproduction harness: regenerates every table and figure of
//! *Madeira, Costa, Vieira — "On the Emulation of Software Faults by
//! Software Fault Injection" (DSN 2000)*.
//!
//! ```text
//! cargo bench -p swifi-bench --bench repro              # everything
//! cargo bench -p swifi-bench --bench repro -- table1    # one artefact
//! REPRO_FULL=1 cargo bench ... -- fig7                  # paper scale
//! ```
//!
//! Artefacts: `table1 section5 table2 table3 table4 fig7 fig8 fig9 fig10
//! ablation`. JSON copies land in `target/repro/`.

use std::collections::BTreeMap;
use std::time::Instant;

use swifi_bench::dump_json;
use swifi_campaign::ablation::ablation;
use swifi_campaign::intensive::table1;
use swifi_campaign::report::{mode_cells, pct, render_table, MODE_HEADERS};
use swifi_campaign::runner::{FailureMode, ModeCounts};
use swifi_campaign::section5::{not_emulable_field_fraction, section5};
use swifi_campaign::section6::{
    campaign_all, chosen_locations, merge_by_error_type, table2, CampaignScale, ProgramCampaign,
};
use swifi_odc::{AssignErrorType, CheckErrorType};

const SEED: u64 = 20000625;

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let full = std::env::var_os("REPRO_FULL").is_some();

    println!("== SWIFI reproduction harness ==");
    println!(
        "scale: {} (set REPRO_FULL=1 for the paper's 300 inputs/fault)\n",
        if full { "FULL (paper)" } else { "reduced" }
    );

    if want("table1") {
        run_table1(full);
    }
    if want("section5") {
        run_section5();
    }
    if want("table2") {
        run_table2();
    }
    if want("table3") {
        run_table3();
    }
    // The class campaign feeds table4 and figures 7-10; run it once.
    let campaign_needed = ["table4", "fig7", "fig8", "fig9", "fig10"]
        .iter()
        .any(|a| want(a));
    if campaign_needed {
        let scale = CampaignScale::from_env();
        println!(
            "running class campaigns over 8 programs ({} inputs per fault)...",
            scale.inputs_per_fault
        );
        let t0 = Instant::now();
        let campaigns = campaign_all(scale, SEED);
        println!("campaigns done in {:.1}s\n", t0.elapsed().as_secs_f64());
        dump_json("campaigns", &campaigns);
        if want("table4") {
            run_table4(&campaigns);
        }
        if want("fig7") {
            run_fig_by_program(&campaigns, true);
        }
        if want("fig8") {
            run_fig_by_program(&campaigns, false);
        }
        if want("fig9") || want("fig10") {
            let (assign, check) = merge_by_error_type(&campaigns);
            if want("fig9") {
                run_fig9(&assign);
            }
            if want("fig10") {
                run_fig10(&check);
            }
        }
    }
    if want("ablation") {
        run_ablation();
    }
    if want("exposure") {
        run_exposure();
    }
    if want("triggers") {
        run_triggers();
    }
    if want("hwcompare") {
        run_hwcompare();
    }
    println!("JSON artefacts written to target/repro/");
}

fn run_table1(full: bool) {
    let runs = if full { 10_000 } else { 1_000 };
    println!("-- Table 1: failure symptoms of the real software faults ({runs} runs each) --");
    let t0 = Instant::now();
    let rows = table1(runs, SEED);
    let paper: BTreeMap<&str, &str> = [
        ("C.team1", "7.3%"),
        ("C.team2", "16.9%"),
        ("C.team3", "1.0%"),
        ("C.team4", "30.8%"),
        ("C.team5", "2.9%"),
        ("JB.team6", "0.05%"),
        ("JB.team7", "1.8%"),
    ]
    .into();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                r.defect_type.clone(),
                pct(r.wrong_pct()),
                pct(r.correct_pct()),
                paper.get(r.program.as_str()).unwrap_or(&"?").to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Program",
                "Fault type",
                "% Wrong results",
                "% Correct results",
                "paper % wrong"
            ],
            &table_rows
        )
    );
    println!("(no hangs or crashes from real faults, as in the paper)");
    println!("elapsed: {:.1}s\n", t0.elapsed().as_secs_f64());
    dump_json("table1", &rows);
}

fn run_section5() {
    println!("-- Section 5: emulation of the seven real faults --");
    let t0 = Instant::now();
    let rows = section5(50, SEED);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                r.defect_type.clone(),
                r.class.to_string(),
                r.word_diffs.to_string(),
                r.required_triggers.to_string(),
                r.emulation_accuracy.map_or("n/a".to_string(), pct),
                r.mode.clone().unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Program",
                "Fault type",
                "Class",
                "Word diffs",
                "Triggers",
                "Emulation acc.",
                "Mode"
            ],
            &table_rows
        )
    );
    println!("classes: A = emulable with hardware triggers (Figs. 3 & 5 recipes);");
    println!("         B = exceeds the 2 breakpoint registers, needs intrusive traps (Fig. 4);");
    println!("         C = structural change, beyond any SWIFI tool (Fig. 6)");
    println!(
        "field data: algorithm+function faults = {:.0}% of field faults cannot be emulated",
        not_emulable_field_fraction() * 100.0
    );
    println!("elapsed: {:.1}s\n", t0.elapsed().as_secs_f64());
    dump_json("section5", &rows);
}

fn run_table2() {
    println!("-- Table 2: target programs and main features --");
    let rows = table2();
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                r.loc.to_string(),
                if r.recursive { "yes" } else { "no" }.to_string(),
                if r.dynamic_structures { "yes" } else { "no" }.to_string(),
                r.cores.to_string(),
                if r.had_real_fault {
                    "1 (corrected)"
                } else {
                    "-"
                }
                .to_string(),
                r.features.clone(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Program",
                "LoC",
                "Recursive",
                "Dynamic",
                "Cores",
                "Real faults",
                "Features"
            ],
            &table_rows
        )
    );
    dump_json("table2", &rows);
}

fn run_table3() {
    println!("-- Table 3: subset of injected error types --");
    let mut rows: Vec<Vec<String>> = AssignErrorType::ALL
        .iter()
        .map(|t| vec!["Assignment".to_string(), t.label().to_string()])
        .collect();
    rows.extend(
        CheckErrorType::ALL
            .iter()
            .map(|t| vec!["Checking".to_string(), t.label().to_string()]),
    );
    println!(
        "{}",
        render_table(&["Fault class", "Error type (original -> injected)"], &rows)
    );
    println!("index errors ([i] -> [i±1]) apply only to checking over arrays, per the paper\n");
}

fn run_table4(campaigns: &[ProgramCampaign]) {
    println!("-- Table 4: injected faults --");
    let rows: Vec<Vec<String>> = campaigns
        .iter()
        .map(|c| {
            let (na, nc) = chosen_locations(&c.program);
            vec![
                c.program.clone(),
                c.plan.possible_assign.to_string(),
                na.min(c.plan.possible_assign).to_string(),
                c.injected_assign().to_string(),
                c.plan.possible_check.to_string(),
                nc.min(c.plan.possible_check).to_string(),
                c.injected_check().to_string(),
            ]
        })
        .collect();
    let total: u64 = campaigns.iter().map(|c| c.total_runs).sum();
    println!(
        "{}",
        render_table(
            &[
                "Program",
                "A: possible",
                "A: chosen",
                "A: injected",
                "C: possible",
                "C: chosen",
                "C: injected",
            ],
            &rows
        )
    );
    println!("total injected faults (runs): {total}  (paper at full scale: 108,600)\n");
}

fn fig_row(name: &str, counts: &ModeCounts) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(mode_cells(counts));
    row
}

fn run_fig_by_program(campaigns: &[ProgramCampaign], assign: bool) {
    let (fig, class) = if assign {
        ("Figure 7", "assignment")
    } else {
        ("Figure 8", "checking")
    };
    println!("-- {fig}: failure modes per program, {class} faults --");
    let rows: Vec<Vec<String>> = campaigns
        .iter()
        .map(|c| {
            fig_row(
                &c.program,
                if assign {
                    &c.assign_modes
                } else {
                    &c.check_modes
                },
            )
        })
        .collect();
    let mut headers = vec!["Program"];
    headers.extend(MODE_HEADERS);
    println!("{}", render_table(&headers, &rows));
    let dormant: u64 = campaigns.iter().map(|c| c.dormant_runs).sum();
    let total: u64 = campaigns.iter().map(|c| c.total_runs).sum();
    println!(
        "dormant (never-fired) runs across campaign: {dormant}/{total} = {}\n",
        pct(dormant as f64 * 100.0 / total.max(1) as f64)
    );
}

fn run_fig9(assign: &BTreeMap<AssignErrorType, ModeCounts>) {
    println!("-- Figure 9: failure modes per assignment error type (all faults) --");
    let rows: Vec<Vec<String>> = AssignErrorType::ALL
        .iter()
        .filter_map(|t| assign.get(t).map(|c| fig_row(t.label(), c)))
        .collect();
    let mut headers = vec!["Error type"];
    headers.extend(MODE_HEADERS);
    println!("{}", render_table(&headers, &rows));
}

fn run_fig10(check: &BTreeMap<CheckErrorType, ModeCounts>) {
    println!("-- Figure 10: failure modes per checking error type (all faults) --");
    let rows: Vec<Vec<String>> = CheckErrorType::ALL
        .iter()
        .filter_map(|t| check.get(t).map(|c| fig_row(t.label(), c)))
        .collect();
    let mut headers = vec!["Error type"];
    headers.extend(MODE_HEADERS);
    println!("{}", render_table(&headers, &rows));
    // The paper's headline contrasts: != -> = and true -> false barely
    // ever stay correct; < -> <= often does.
    for t in [
        CheckErrorType::NeToEq,
        CheckErrorType::TrueToFalse,
        CheckErrorType::LtToLe,
    ] {
        if let Some(c) = check.get(&t) {
            println!(
                "  `{}` correct rate: {}",
                t.label(),
                pct(c.pct(FailureMode::Correct))
            );
        }
    }
    println!();
}

fn run_hwcompare() {
    println!("-- Hardware-fault baseline (sec. 6.4): random bit flips vs software errors --");
    let target = swifi_programs::program("JB.team11").expect("exists");
    let scale = CampaignScale {
        inputs_per_fault: 10,
    };
    let t0 = Instant::now();
    let hw = swifi_campaign::hardware::hardware_campaign(&target, 30, scale, SEED);
    let sw = swifi_campaign::section6::class_campaign(&target, scale, SEED);
    let mut rows: Vec<Vec<String>> = hw
        .iter()
        .map(|r| {
            let mut row = vec![r.kind.label().to_string()];
            row.extend(mode_cells(&r.modes));
            row
        })
        .collect();
    let mut sw_assign = vec!["software: assignment errors".to_string()];
    sw_assign.extend(mode_cells(&sw.assign_modes));
    rows.push(sw_assign);
    let mut sw_check = vec!["software: checking errors".to_string()];
    sw_check.extend(mode_cells(&sw.check_modes));
    rows.push(sw_check);
    let mut headers = vec!["Fault source"];
    headers.extend(MODE_HEADERS);
    println!("{}", render_table(&headers, &rows));
    println!("the overlap in profiles is the paper's point: random-triggered injected");
    println!("errors emulate software and hardware faults at the same time (sec. 6.4)");
    println!("elapsed: {:.1}s\n", t0.elapsed().as_secs_f64());
    dump_json("hwcompare", &hw);
}

fn run_triggers() {
    println!("-- Trigger-sparsity ablation (the paper's closing future-work question) --");
    let target = swifi_programs::program("JB.team11").expect("exists");
    let scale = CampaignScale {
        inputs_per_fault: 10,
    };
    let t0 = Instant::now();
    let rows = swifi_campaign::triggers::trigger_ablation(&target, scale, SEED);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.policy.clone()];
            row.extend(mode_cells(&r.modes));
            row.push(format!("{}/{}", r.dormant_runs, r.modes.total()));
            row
        })
        .collect();
    let mut headers = vec!["Firing policy (When)"];
    headers.extend(MODE_HEADERS);
    headers.push("Dormant");
    println!("{}", render_table(&headers, &table_rows));
    println!("sparser triggers leave more faults dormant — moving injected-fault profiles");
    println!("toward the near-total dormancy of real software faults (Table 1)");
    println!("elapsed: {:.1}s\n", t0.elapsed().as_secs_f64());
    dump_json("triggers", &rows);
}

fn run_exposure() {
    println!("-- Figure 2 (empirical): exposure chains of the addressable real faults --");
    let runs = if std::env::var_os("REPRO_FULL").is_some() {
        2_000
    } else {
        300
    };
    let t0 = Instant::now();
    let rows = swifi_campaign::exposure::estimate_exposure(runs, SEED);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|e| {
            vec![
                e.program.clone(),
                format!("{:.3}", e.p1),
                format!("{:.3}", e.p23),
                format!("{:.4}", e.failure_rate),
                e.min_acceleration()
                    .map_or("n/a".to_string(), |a| format!("{a:.0}x")),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Program",
                "p1 (executed)",
                "p2*p3 (fail|exec)",
                "failure rate",
                "min accel."
            ],
            &table_rows
        )
    );
    println!("error injection forces p1 = p2 = 1, hence its much stronger impact (sec. 6.4)");
    println!("elapsed: {:.1}s\n", t0.elapsed().as_secs_f64());
    dump_json("exposure", &rows);
}

fn run_ablation() {
    println!("-- Section 6.1 ablation: injection allocation strategies (SOR) --");
    let target = swifi_programs::program("SOR").expect("SOR exists");
    let scale = if std::env::var_os("REPRO_FULL").is_some() {
        CampaignScale {
            inputs_per_fault: 25,
        }
    } else {
        CampaignScale {
            inputs_per_fault: 5,
        }
    };
    let t0 = Instant::now();
    let rows = ablation(&target, 12, scale, SEED);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.strategy.clone()];
            row.extend(mode_cells(&r.modes));
            row.push(r.dormant_runs.to_string());
            row.push(
                r.allocation
                    .iter()
                    .filter(|&&(_, n)| n > 0)
                    .map(|(f, n)| format!("{f}:{n}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            row
        })
        .collect();
    let mut headers = vec!["Strategy"];
    headers.extend(MODE_HEADERS);
    headers.push("Dormant");
    headers.push("Allocation");
    println!("{}", render_table(&headers, &table_rows));
    println!("elapsed: {:.1}s\n", t0.elapsed().as_secs_f64());
    dump_json("ablation", &rows);
}
