//! Criterion performance benches for the substrate: VM interpreter
//! throughput, compiler speed, injector hook overhead, end-to-end
//! campaign run rate, and the warm-reboot vs cold-boot comparison that
//! backs `BENCH_warm_reboot.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swifi_campaign::section6::chosen_locations;
use swifi_campaign::RunSession;
use swifi_core::fault::FaultSpec;
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::compile;
use swifi_programs::{program, Family, TestInput};
use swifi_vm::asm::assemble;
use swifi_vm::machine::{Machine, MachineConfig};
use swifi_vm::Noop;

/// The vendored criterion shim has no CLI bench filter, so CI jobs that
/// only want one headline bench (e.g. the non-gating block-translation
/// perf job) select it with `SWIFI_BENCH_ONLY=block_translation`.
/// Comma-separated substrings; unset runs everything.
fn bench_enabled(name: &str) -> bool {
    match std::env::var("SWIFI_BENCH_ONLY") {
        Err(_) => true,
        Ok(v) => v.split(',').any(|pat| {
            let pat = pat.trim();
            !pat.is_empty() && name.contains(pat)
        }),
    }
}

/// A tight 1M-instruction count-down loop.
fn countdown_image() -> swifi_vm::Image {
    assemble(
        "li r5, 250000
         loop:
         addi r5, r5, -1
         cmpi cr0, r5, 0
         bc cr0.gt, 1, loop
         li r3, 0
         halt",
    )
    .expect("assembles")
}

fn bench_vm_throughput(c: &mut Criterion) {
    if !bench_enabled("vm_throughput") {
        return;
    }
    let image = countdown_image();
    let mut group = c.benchmark_group("vm");
    // ~1M retired instructions per iteration.
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("interpreter_1M_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let out = m.run(&mut Noop);
            assert!(out.is_normal());
            m.retired()
        })
    });
    group.finish();
}

fn bench_injector_overhead(c: &mut Criterion) {
    if !bench_enabled("injector_overhead") {
        return;
    }
    let image = countdown_image();
    // A dormant fault at an unexecuted address: measures pure hook cost.
    let fault = FaultSpec::replace_instr(0x1000, 0);
    let mut group = c.benchmark_group("injector");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("armed_but_dormant_1M_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 0).unwrap();
            inj.prepare(&mut m).unwrap();
            let out = m.run(&mut inj);
            assert!(out.is_normal());
        })
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    if !bench_enabled("compiler") {
        return;
    }
    let src = program("C.team9").unwrap().source_correct;
    let mut group = c.benchmark_group("compiler");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("compile_cteam9", |b| {
        b.iter(|| compile(src).expect("compiles"))
    });
    group.finish();
}

fn bench_campaign_run(c: &mut Criterion) {
    if !bench_enabled("campaign_run") {
        return;
    }
    let p = program("JB.team11").unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let input = TestInput::JamesB {
        seed: 7,
        line: b"benchmark line".to_vec(),
    };
    let set = swifi_core::locations::generate_error_set(&compiled.debug, 3, 3, 1);
    let fault = set.assign_faults[0].spec;
    c.bench_function("campaign/one_injected_run_jamesb", |b| {
        b.iter(|| swifi_campaign::execute(&compiled, Family::JamesB, &input, Some(&fault), 1))
    });
    let cam = program("C.team8").unwrap();
    let cam_compiled = compile(cam.source_correct).unwrap();
    let cam_input = TestInput::Camelot {
        pieces: vec![(0, 0), (3, 4), (6, 2)],
    };
    c.bench_function("campaign/one_clean_run_camelot", |b| {
        b.iter(|| swifi_campaign::execute(&cam_compiled, Family::Camelot, &cam_input, None, 1))
    });
}

/// One JB-family program's cold-vs-warm measurement.
struct RebootMeasurement {
    program: &'static str,
    runs: u64,
    cold_runs_per_sec: f64,
    warm_runs_per_sec: f64,
    /// Per-run reboot overhead, cold lifecycle: `Machine::new` + `load` +
    /// `Injector::new` + `prepare` (everything except guest execution).
    cold_reboot_ns: f64,
    /// Per-run reboot overhead, warm lifecycle: `restore` + `reset` +
    /// `prepare`.
    warm_reboot_ns: f64,
}

impl RebootMeasurement {
    fn speedup(&self) -> f64 {
        self.warm_runs_per_sec / self.cold_runs_per_sec
    }

    fn reboot_speedup(&self) -> f64 {
        self.cold_reboot_ns / self.warm_reboot_ns
    }
}

/// Replay one program's class-campaign schedule (every generated fault ×
/// every shared input, exactly the §6 loop) through a lifecycle `run`
/// closure, returning runs/second.
fn time_schedule(
    faults: &[swifi_core::locations::GeneratedFault],
    inputs: &[TestInput],
    seed: u64,
    mut run: impl FnMut(&TestInput, &FaultSpec, u64),
) -> f64 {
    let t0 = std::time::Instant::now();
    let mut runs = 0u64;
    for fault in faults {
        for (i, input) in inputs.iter().enumerate() {
            let run_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(fault.site_addr as u64)
                .wrapping_add(i as u64);
            run(input, &fault.spec, run_seed);
            runs += 1;
        }
    }
    runs as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Time just the reboot portion of both lifecycles (no guest execution):
/// cold = `Machine::new` + `load` + `Injector::new` + `prepare` per run;
/// warm = `restore` + `reset` + `prepare` per run.
fn measure_reboot_overhead(
    compiled: &swifi_lang::Program,
    family: Family,
    spec: FaultSpec,
) -> (f64, f64) {
    use swifi_campaign::runner::campaign_config;
    const N: u32 = 2000;
    let t0 = std::time::Instant::now();
    for i in 0..N {
        let mut m = Machine::new(campaign_config(family));
        m.load(&compiled.image);
        let mut inj = Injector::new(vec![spec], TriggerMode::Hardware, i as u64).unwrap();
        inj.set_reference_dispatch(true);
        inj.prepare(&mut m).unwrap();
        criterion::black_box(&m);
    }
    let cold_ns = t0.elapsed().as_nanos() as f64 / N as f64;

    let mut m = Machine::new(campaign_config(family));
    m.load(&compiled.image);
    let snap = m.snapshot();
    let mut inj = Injector::new(vec![spec], TriggerMode::Hardware, 0).unwrap();
    let t0 = std::time::Instant::now();
    for i in 0..N {
        m.restore(&snap);
        inj.reset(i as u64);
        inj.prepare(&mut m).unwrap();
        criterion::black_box(&m);
    }
    let warm_ns = t0.elapsed().as_nanos() as f64 / N as f64;
    (cold_ns, warm_ns)
}

/// Measure the §6 class campaign for one JB program under both machine
/// lifecycles: cold boot (fresh machine + fresh injector per run, the
/// pre-`RunSession` engine) and warm reboot (one session, snapshot
/// restore between runs).
fn measure_reboot(name: &'static str, seed: u64) -> RebootMeasurement {
    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(6, seed ^ 0x5EED);

    // Warm-up pass so page-cache / allocator effects hit both sides evenly.
    let mut session = RunSession::new(&compiled, p.family);
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        session.run(input, Some(spec), s);
    });

    let cold_runs_per_sec = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        swifi_campaign::execute_cold(&compiled, p.family, input, Some(spec), s);
    });
    let mut session = RunSession::new(&compiled, p.family);
    let warm_runs_per_sec = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        session.run(input, Some(spec), s);
    });
    let (cold_reboot_ns, warm_reboot_ns) =
        measure_reboot_overhead(&compiled, p.family, faults[0].spec);
    RebootMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        cold_runs_per_sec,
        warm_runs_per_sec,
        cold_reboot_ns,
        warm_reboot_ns,
    }
}

/// Warm-reboot headline bench: §6 class campaigns for the JB family under
/// both lifecycles, recorded to `BENCH_warm_reboot.json` at the repo root.
fn bench_warm_reboot(_c: &mut Criterion) {
    if !bench_enabled("warm_reboot") {
        return;
    }
    let measurements: Vec<RebootMeasurement> = ["JB.team6", "JB.team11"]
        .iter()
        .map(|name| measure_reboot(name, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} cold: {:>8.1} runs/s   warm: {:>8.1} runs/s   campaign speedup: {:.1}x",
            format!("reboot/class_campaign_{}", m.program),
            m.cold_runs_per_sec,
            m.warm_runs_per_sec,
            m.speedup()
        );
        println!(
            "{:<42} cold: {:>8.2} us/run  warm: {:>8.2} us/run  reboot speedup: {:.0}x",
            format!("reboot/lifecycle_overhead_{}", m.program),
            m.cold_reboot_ns / 1000.0,
            m.warm_reboot_ns / 1000.0,
            m.reboot_speedup()
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \"cold_runs_per_sec\": {:.1}, \
             \"warm_runs_per_sec\": {:.1}, \"campaign_speedup\": {:.2}, \
             \"cold_reboot_us_per_run\": {:.3}, \"warm_reboot_us_per_run\": {:.3}, \
             \"reboot_overhead_speedup\": {:.1}}}",
            m.program,
            m.runs,
            m.cold_runs_per_sec,
            m.warm_runs_per_sec,
            m.speedup(),
            m.cold_reboot_ns / 1000.0,
            m.warm_reboot_ns / 1000.0,
            m.reboot_speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"warm_reboot\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x 6 shared inputs\",\n  \"cold\": \"seed lifecycle: fresh Machine + \
         load + fresh Injector (reference dispatch) per run\",\n  \"warm\": \"one RunSession: \
         snapshot restore + injector reset per run, hot-path dispatch\",\n  \
         \"reboot_overhead\": \"per-run lifecycle cost excluding guest execution; the campaign \
         speedup is Amdahl-capped by guest execution time\",\n  \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_warm_reboot.json");
    std::fs::write(&path, json).expect("write BENCH_warm_reboot.json");
    println!("wrote {}", path.display());
}

/// One program's cached-vs-reference interpreter measurement on the §6
/// class-campaign schedule. Both sides use the warm-reboot lifecycle (the
/// PR-1 engine); the only variable is the predecoded translation cache.
struct CacheMeasurement {
    program: &'static str,
    runs: u64,
    reference_instrs_per_sec: f64,
    cached_instrs_per_sec: f64,
    reference_runs_per_sec: f64,
    cached_runs_per_sec: f64,
    lines_built: u64,
    invalidations: u64,
    slow_fetches: u64,
    retired_instrs: u64,
}

/// The PR-1 warm path's throughput on this same schedule, as committed in
/// PR 1's BENCH_warm_reboot.json (`git show <pr1>:BENCH_warm_reboot.json`,
/// `warm_runs_per_sec`). Kept here so the report can state the speedup
/// against the actual PR-1 engine, not just against this tree's reference
/// interpreter (which also gained from this PR's hook-dispatch work and
/// therefore understates the PR-over-PR improvement). Instructions/s and
/// runs/s ratios coincide: the schedule retires identical instruction
/// counts whichever engine replays it.
fn pr1_warm_runs_per_sec(program: &str) -> Option<f64> {
    match program {
        "JB.team6" => Some(72_518.4),
        "JB.team11" => Some(5_258.9),
        _ => None,
    }
}

impl CacheMeasurement {
    fn speedup(&self) -> f64 {
        self.cached_instrs_per_sec / self.reference_instrs_per_sec
    }

    fn speedup_vs_pr1(&self) -> Option<f64> {
        pr1_warm_runs_per_sec(self.program).map(|pr1| self.cached_runs_per_sec / pr1)
    }

    fn slow_fetch_pct(&self) -> f64 {
        if self.retired_instrs == 0 {
            return 0.0;
        }
        self.slow_fetches as f64 * 100.0 / self.retired_instrs as f64
    }
}

/// One JB class campaign takes only a few milliseconds of wall clock —
/// far too noisy a window to gate a speedup claim on — so each side is
/// measured as [`INTERLEAVE_ROUNDS`] chunks of at least [`CHUNK_SECS`]
/// each, *alternating* between the reference and cached sessions, and the
/// fastest chunk wins. Alternation makes slow host drift land on both
/// sides roughly equally; best-of is the right estimator on a shared box
/// because external contention only ever slows a chunk down, so the
/// fastest chunk is the least biased sample of true throughput.
const CHUNK_SECS: f64 = 0.1;
/// Alternating measurement rounds per interpreter side.
const INTERLEAVE_ROUNDS: usize = 8;

/// Best-chunk tracker for one side's measurement rounds.
#[derive(Default)]
struct Accum {
    best_runs_per_sec: f64,
    best_instrs_per_sec: f64,
    retired: u64,
}

/// Replay the schedule through `session` until at least [`CHUNK_SECS`] of
/// wall clock has elapsed; keep the chunk's rates if they are the best
/// seen so far.
fn time_schedule_chunk(
    session: &mut RunSession,
    faults: &[swifi_core::locations::GeneratedFault],
    inputs: &[TestInput],
    seed: u64,
    acc: &mut Accum,
) {
    let before = session.stats().retired_instrs;
    let mut runs = 0u64;
    let t0 = std::time::Instant::now();
    loop {
        time_schedule(faults, inputs, seed, |input, spec, s| {
            session.run(input, Some(spec), s);
        });
        runs += faults.len() as u64 * inputs.len() as u64;
        if t0.elapsed().as_secs_f64() >= CHUNK_SECS {
            break;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let retired = session.stats().retired_instrs - before;
    acc.retired += retired;
    if retired as f64 / secs > acc.best_instrs_per_sec {
        acc.best_instrs_per_sec = retired as f64 / secs;
        acc.best_runs_per_sec = runs as f64 / secs;
    }
}

/// Measure the §6 class campaign for one JB program under the cached and
/// reference interpreters, both on warm-reboot sessions.
fn measure_translation_cache(name: &'static str, seed: u64) -> CacheMeasurement {
    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(6, seed ^ 0x5EED);

    let mut reference = RunSession::new(&compiled, p.family);
    reference.set_reference_interp(true);
    let mut cached = RunSession::new(&compiled, p.family);
    // This bench measures the PR-2 line cache in isolation; the block
    // layer has its own bench (bench_block_translation).
    cached.set_block_cache(false);
    // Warm-up pass on each side so allocator / page-cache effects and the
    // first lazy decode of every line are off the measured clock.
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        reference.run(input, Some(spec), s);
    });
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        cached.run(input, Some(spec), s);
    });

    let slow_before = cached.stats().slow_fetches;
    let mut ref_acc = Accum::default();
    let mut cached_acc = Accum::default();
    for _ in 0..INTERLEAVE_ROUNDS {
        time_schedule_chunk(&mut reference, &faults, &inputs, seed, &mut ref_acc);
        time_schedule_chunk(&mut cached, &faults, &inputs, seed, &mut cached_acc);
    }
    let stats = cached.stats();
    CacheMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        reference_instrs_per_sec: ref_acc.best_instrs_per_sec,
        cached_instrs_per_sec: cached_acc.best_instrs_per_sec,
        reference_runs_per_sec: ref_acc.best_runs_per_sec,
        cached_runs_per_sec: cached_acc.best_runs_per_sec,
        lines_built: stats.decode_lines_built,
        invalidations: stats.decode_invalidations,
        slow_fetches: stats.slow_fetches - slow_before,
        retired_instrs: cached_acc.retired,
    }
}

/// Translation-cache headline bench: §6 class campaigns for the JB family
/// under the cached and decode-every-fetch interpreters (both warm-reboot),
/// recorded to `BENCH_translation_cache.json` at the repo root.
fn bench_translation_cache(_c: &mut Criterion) {
    if !bench_enabled("translation_cache") {
        return;
    }
    let measurements: Vec<CacheMeasurement> = ["JB.team6", "JB.team11"]
        .iter()
        .map(|name| measure_translation_cache(name, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} ref: {:>6.1} Minstr/s  cached: {:>6.1} Minstr/s  speedup: {:.2}x ({}x vs PR-1 warm)",
            format!("icache/class_campaign_{}", m.program),
            m.reference_instrs_per_sec / 1e6,
            m.cached_instrs_per_sec / 1e6,
            m.speedup(),
            m.speedup_vs_pr1()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "?".into())
        );
        println!(
            "{:<42} {} lines built, {} invalidated, {} slow fetches ({:.3}% of {} instrs)",
            format!("icache/cache_behaviour_{}", m.program),
            m.lines_built,
            m.invalidations,
            m.slow_fetches,
            m.slow_fetch_pct(),
            m.retired_instrs
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \
             \"reference_instrs_per_sec\": {:.0}, \"cached_instrs_per_sec\": {:.0}, \
             \"reference_runs_per_sec\": {:.1}, \"cached_runs_per_sec\": {:.1}, \
             \"instr_throughput_speedup\": {:.2}, \
             \"pr1_warm_runs_per_sec\": {:.1}, \"speedup_vs_pr1_warm\": {:.2}, \
             \"decode_lines_built\": {}, \
             \"decode_invalidations\": {}, \"slow_fetches\": {}, \
             \"slow_fetch_pct\": {:.4}}}",
            m.program,
            m.runs,
            m.reference_instrs_per_sec,
            m.cached_instrs_per_sec,
            m.reference_runs_per_sec,
            m.cached_runs_per_sec,
            m.speedup(),
            pr1_warm_runs_per_sec(m.program).unwrap_or(f64::NAN),
            m.speedup_vs_pr1().unwrap_or(f64::NAN),
            m.lines_built,
            m.invalidations,
            m.slow_fetches,
            m.slow_fetch_pct()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"translation_cache\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x 6 shared inputs\",\n  \"reference\": \"warm RunSession, seed \
         decode-every-fetch interpreter\",\n  \"cached\": \"warm RunSession, \
         predecoded line cache; armed trigger PCs pinned to the slow path, writes into code \
         invalidate covering lines\",\n  \"pr1_baseline\": \"warm_runs_per_sec from PR 1's \
         committed BENCH_warm_reboot.json, same schedule; runs/s and instrs/s ratios coincide \
         because both engines retire identical instruction counts\",\n  \"methodology\": \
         \"interleaved best-of-{INTERLEAVE_ROUNDS} chunks of >={CHUNK_SECS}s per side; best-of \
         because external contention only slows a chunk, never speeds it\",\n  \
         \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_translation_cache.json");
    std::fs::write(&path, json).expect("write BENCH_translation_cache.json");
    println!("wrote {}", path.display());
}

/// One program's fork-on vs fork-off measurement on the §6 class-campaign
/// schedule. Both sides are warm-reboot sessions with the predecoded
/// translation cache (the PR-2 engine); the only variable is the
/// prefix-fork cache.
struct ForkMeasurement {
    program: &'static str,
    runs: u64,
    full_runs_per_sec: f64,
    forked_runs_per_sec: f64,
    snapshots_built: u64,
    fork_hits: u64,
    dormant_short_circuits: u64,
    instrs_skipped: u64,
    instrs_executed: u64,
}

/// The PR-2 cached warm path's throughput on this same schedule, as
/// committed in PR 2's BENCH_translation_cache.json
/// (`cached_runs_per_sec`). Only the JB schedules were measured then;
/// for the Camelot schedule the fork-off session — which *is* the PR-2
/// engine, measured interleaved on the same box — is the baseline.
fn pr2_cached_runs_per_sec(program: &str) -> Option<f64> {
    match program {
        "JB.team6" => Some(156_069.4),
        "JB.team11" => Some(11_382.6),
        _ => None,
    }
}

impl ForkMeasurement {
    fn speedup(&self) -> f64 {
        self.forked_runs_per_sec / self.full_runs_per_sec
    }

    fn speedup_vs_pr2(&self) -> Option<f64> {
        pr2_cached_runs_per_sec(self.program).map(|pr2| self.forked_runs_per_sec / pr2)
    }

    fn skipped_pct(&self) -> f64 {
        let total = self.instrs_skipped + self.instrs_executed;
        if total == 0 {
            return 0.0;
        }
        self.instrs_skipped as f64 * 100.0 / total as f64
    }
}

/// Replay the schedule through `session` until at least [`CHUNK_SECS`] of
/// wall clock has elapsed, keeping the best runs/s chunk. Runs/s — not
/// instrs/s — is the honest metric here: forked runs retire fewer
/// instructions *by design*, so instruction throughput would understate
/// (full side) or overstate nothing for the fork side.
fn time_schedule_chunk_runs(
    session: &mut RunSession,
    faults: &[swifi_core::locations::GeneratedFault],
    inputs: &[TestInput],
    seed: u64,
    best_runs_per_sec: &mut f64,
) {
    let mut runs = 0u64;
    let t0 = std::time::Instant::now();
    loop {
        time_schedule(faults, inputs, seed, |input, spec, s| {
            session.run(input, Some(spec), s);
        });
        runs += faults.len() as u64 * inputs.len() as u64;
        if t0.elapsed().as_secs_f64() >= CHUNK_SECS {
            break;
        }
    }
    let rate = runs as f64 / t0.elapsed().as_secs_f64();
    if rate > *best_runs_per_sec {
        *best_runs_per_sec = rate;
    }
}

/// Measure the §6 class campaign for one program with the prefix-fork
/// cache on and off, both on warm cached-interpreter sessions.
/// `n_inputs` is 6 for the fast JB schedules; the ~100ms-per-run Camelot
/// schedule uses 2 so a measurement chunk stays a few seconds.
fn measure_prefix_fork(name: &'static str, n_inputs: usize, seed: u64) -> ForkMeasurement {
    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(n_inputs, seed ^ 0x5EED);

    let mut full = RunSession::new(&compiled, p.family);
    let mut forked = RunSession::new(&compiled, p.family);
    forked.set_prefix_cache(Some(swifi_campaign::PrefixCache::shared()));
    // Both sides on the PR-2 line-cache engine: this bench isolates the
    // fork cache; the block layer has its own bench.
    full.set_block_cache(false);
    forked.set_block_cache(false);
    // Warm-up pass on each side. On the fork side this is the
    // capture-continue pass: it builds every (input, trigger-pc)
    // snapshot, so the measured chunks below are pure fork hits and
    // dormant short-circuits — the steady state of a long campaign.
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        full.run(input, Some(spec), s);
    });
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        forked.run(input, Some(spec), s);
    });

    let mut full_best = 0.0f64;
    let mut forked_best = 0.0f64;
    for _ in 0..INTERLEAVE_ROUNDS {
        time_schedule_chunk_runs(&mut full, &faults, &inputs, seed, &mut full_best);
        time_schedule_chunk_runs(&mut forked, &faults, &inputs, seed, &mut forked_best);
    }
    let stats = forked.stats();
    ForkMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        full_runs_per_sec: full_best,
        forked_runs_per_sec: forked_best,
        snapshots_built: stats.prefix_snapshots_built,
        fork_hits: stats.prefix_fork_hits,
        dormant_short_circuits: stats.prefix_dormant_short_circuits,
        instrs_skipped: stats.prefix_instrs_skipped,
        instrs_executed: stats.retired_instrs,
    }
}

/// Prefix-fork headline bench: §6 class campaigns for the JB family with
/// the fork cache on vs off (both warm, cached interpreter), recorded to
/// `BENCH_prefix_fork.json` at the repo root.
fn bench_prefix_fork(_c: &mut Criterion) {
    if !bench_enabled("prefix_fork") {
        return;
    }
    // JB schedules for continuity with the PR-1/PR-2 benches; C.team10 is
    // the deep-trigger §6 schedule (its generated fault sites first fire
    // ~halfway through the run, so forking skips ~half the instructions).
    let measurements: Vec<ForkMeasurement> = [("JB.team6", 6), ("JB.team11", 6), ("C.team10", 2)]
        .iter()
        .map(|&(name, n_inputs)| measure_prefix_fork(name, n_inputs, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} full: {:>8.1} runs/s  forked: {:>8.1} runs/s  speedup: {:.2}x ({}x vs PR-2 cached)",
            format!("prefix/class_campaign_{}", m.program),
            m.full_runs_per_sec,
            m.forked_runs_per_sec,
            m.speedup(),
            m.speedup_vs_pr2()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "?".into())
        );
        println!(
            "{:<42} {} snapshots, {} fork hits, {} dormant short-circuits, {:.1}% of prefix instrs skipped",
            format!("prefix/cache_behaviour_{}", m.program),
            m.snapshots_built,
            m.fork_hits,
            m.dormant_short_circuits,
            m.skipped_pct()
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let pr2 = match (pr2_cached_runs_per_sec(m.program), m.speedup_vs_pr2()) {
            (Some(base), Some(s)) => {
                format!("\"pr2_cached_runs_per_sec\": {base:.1}, \"speedup_vs_pr2_cached\": {s:.2}")
            }
            _ => "\"pr2_cached_runs_per_sec\": null, \"speedup_vs_pr2_cached\": null".into(),
        };
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \
             \"full_runs_per_sec\": {:.1}, \"forked_runs_per_sec\": {:.1}, \
             \"runs_speedup\": {:.2}, {pr2}, \
             \"snapshots_built\": {}, \"fork_hits\": {}, \
             \"dormant_short_circuits\": {}, \"instrs_skipped\": {}, \
             \"instrs_skipped_pct\": {:.1}}}",
            m.program,
            m.runs,
            m.full_runs_per_sec,
            m.forked_runs_per_sec,
            m.speedup(),
            m.snapshots_built,
            m.fork_hits,
            m.dormant_short_circuits,
            m.instrs_skipped,
            m.skipped_pct()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"prefix_fork\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x shared inputs (6 for JB, 2 for Camelot)\",\n  \"full\": \"warm RunSession, cached \
         interpreter, --no-prefix-fork (every run executes its full prefix)\",\n  \"forked\": \
         \"warm RunSession + shared PrefixCache: each run forks from a dirty-page snapshot \
         captured at its trigger's firing occurrence; dormant faults short-circuit from the \
         memoized golden run\",\n  \"pr2_baseline\": \"cached_runs_per_sec from PR 2's \
         committed BENCH_translation_cache.json, same schedule\",\n  \"metric\": \"runs/s, not \
         instrs/s: forked runs retire fewer instructions by design, which is the speedup\",\n  \
         \"methodology\": \"interleaved best-of-{INTERLEAVE_ROUNDS} chunks of >={CHUNK_SECS}s \
         per side; fork side warmed first so measured chunks are pure fork hits\",\n  \
         \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_prefix_fork.json");
    std::fs::write(&path, json).expect("write BENCH_prefix_fork.json");
    println!("wrote {}", path.display());
}

/// One program's block-translation measurement on the §6 class-campaign
/// schedule: the PR-2 predecoded-line engine vs the block interpreter,
/// both on warm fork-free sessions. No prefix cache on either side —
/// instrs/s is the headline metric here, and forking skips instructions
/// by design, which would contaminate it.
struct BlockMeasurement {
    program: &'static str,
    runs: u64,
    cached_instrs_per_sec: f64,
    blocks_instrs_per_sec: f64,
    cached_runs_per_sec: f64,
    blocks_runs_per_sec: f64,
    blocks_built: u64,
    block_hits: u64,
    fallback_dispatches: u64,
    block_invalidations: u64,
    block_instrs: u64,
    retired_instrs: u64,
}

/// The PR-5 forked engine's throughput on this same schedule, as
/// committed in PR 5's BENCH_prefix_fork.json (`forked_runs_per_sec`) —
/// the strongest prior engine configuration.
fn pr5_forked_runs_per_sec(program: &str) -> Option<f64> {
    match program {
        "JB.team6" => Some(170_467.1),
        "JB.team11" => Some(9_162.9),
        "C.team10" => Some(21.6),
        _ => None,
    }
}

impl BlockMeasurement {
    fn instrs_speedup(&self) -> f64 {
        self.blocks_instrs_per_sec / self.cached_instrs_per_sec
    }

    fn speedup_vs_pr2(&self) -> Option<f64> {
        pr2_cached_runs_per_sec(self.program).map(|pr2| self.blocks_runs_per_sec / pr2)
    }

    fn speedup_vs_pr5(&self) -> Option<f64> {
        pr5_forked_runs_per_sec(self.program).map(|pr5| self.blocks_runs_per_sec / pr5)
    }

    fn block_instr_pct(&self) -> f64 {
        if self.retired_instrs == 0 {
            return 0.0;
        }
        self.block_instrs as f64 * 100.0 / self.retired_instrs as f64
    }
}

/// Measure the §6 class campaign for one program under the line-cached
/// and block interpreters, both warm and fork-free. `n_inputs` mirrors
/// the prefix-fork bench: 6 for the fast JB schedules, 2 for the deep
/// C.team10 schedule.
fn measure_block_translation(name: &'static str, n_inputs: usize, seed: u64) -> BlockMeasurement {
    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(n_inputs, seed ^ 0x5EED);

    let mut cached = RunSession::new(&compiled, p.family);
    cached.set_block_cache(false);
    let mut blocks = RunSession::new(&compiled, p.family);
    // Warm-up pass per side: first lazy decode of every line and the
    // first translation of every hot block happen off the clock.
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        cached.run(input, Some(spec), s);
    });
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        blocks.run(input, Some(spec), s);
    });

    let mut cached_acc = Accum::default();
    let mut blocks_acc = Accum::default();
    for _ in 0..INTERLEAVE_ROUNDS {
        time_schedule_chunk(&mut cached, &faults, &inputs, seed, &mut cached_acc);
        time_schedule_chunk(&mut blocks, &faults, &inputs, seed, &mut blocks_acc);
    }
    let stats = blocks.stats();
    BlockMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        cached_instrs_per_sec: cached_acc.best_instrs_per_sec,
        blocks_instrs_per_sec: blocks_acc.best_instrs_per_sec,
        cached_runs_per_sec: cached_acc.best_runs_per_sec,
        blocks_runs_per_sec: blocks_acc.best_runs_per_sec,
        blocks_built: stats.blocks_built,
        block_hits: stats.block_hits,
        fallback_dispatches: stats.block_fallbacks,
        block_invalidations: stats.block_invalidations,
        block_instrs: stats.block_instrs,
        retired_instrs: stats.retired_instrs,
    }
}

/// Block-translation headline bench: §6 class campaigns under the
/// line-cached and block interpreters, recorded to
/// `BENCH_block_translation.json` at the repo root. The JB schedules
/// track the PR-2/PR-5 baselines; C.team10 is the deep-recursion
/// schedule where raw interpreter throughput dominates the campaign.
fn bench_block_translation(_c: &mut Criterion) {
    if !bench_enabled("block_translation") {
        return;
    }
    let measurements: Vec<BlockMeasurement> = [("JB.team6", 6), ("JB.team11", 6), ("C.team10", 2)]
        .iter()
        .map(|&(name, n_inputs)| measure_block_translation(name, n_inputs, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} lines: {:>6.1} Minstr/s  blocks: {:>6.1} Minstr/s  speedup: {:.2}x ({}x vs PR-2 cached, {}x vs PR-5 forked)",
            format!("blocks/class_campaign_{}", m.program),
            m.cached_instrs_per_sec / 1e6,
            m.blocks_instrs_per_sec / 1e6,
            m.instrs_speedup(),
            m.speedup_vs_pr2()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "?".into()),
            m.speedup_vs_pr5()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "?".into())
        );
        println!(
            "{:<42} {} blocks built, {} hits, {} fallback dispatches, {} invalidated, {:.1}% of instrs in blocks",
            format!("blocks/cache_behaviour_{}", m.program),
            m.blocks_built,
            m.block_hits,
            m.fallback_dispatches,
            m.block_invalidations,
            m.block_instr_pct()
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let pr2 = match (pr2_cached_runs_per_sec(m.program), m.speedup_vs_pr2()) {
            (Some(base), Some(s)) => {
                format!("\"pr2_cached_runs_per_sec\": {base:.1}, \"speedup_vs_pr2_cached\": {s:.2}")
            }
            _ => "\"pr2_cached_runs_per_sec\": null, \"speedup_vs_pr2_cached\": null".into(),
        };
        let pr5 = match (pr5_forked_runs_per_sec(m.program), m.speedup_vs_pr5()) {
            (Some(base), Some(s)) => {
                format!("\"pr5_forked_runs_per_sec\": {base:.1}, \"speedup_vs_pr5_forked\": {s:.2}")
            }
            _ => "\"pr5_forked_runs_per_sec\": null, \"speedup_vs_pr5_forked\": null".into(),
        };
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \
             \"cached_instrs_per_sec\": {:.0}, \"blocks_instrs_per_sec\": {:.0}, \
             \"cached_runs_per_sec\": {:.1}, \"blocks_runs_per_sec\": {:.1}, \
             \"instrs_speedup\": {:.2}, {pr2}, {pr5}, \
             \"blocks_built\": {}, \"block_hits\": {}, \"fallback_dispatches\": {}, \
             \"block_invalidations\": {}, \"block_instr_pct\": {:.1}}}",
            m.program,
            m.runs,
            m.cached_instrs_per_sec,
            m.blocks_instrs_per_sec,
            m.cached_runs_per_sec,
            m.blocks_runs_per_sec,
            m.instrs_speedup(),
            m.blocks_built,
            m.block_hits,
            m.fallback_dispatches,
            m.block_invalidations,
            m.block_instr_pct()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"block_translation\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x shared inputs (6 for JB, 2 for Camelot)\",\n  \"cached\": \"warm \
         RunSession, predecoded line cache only (--no-block-cache, the PR 2 engine), no prefix \
         fork\",\n  \"blocks\": \"warm RunSession, basic-block superinstruction interpreter; \
         pinned trigger PCs and patched code fall back to the line-cached/slow paths\",\n  \
         \"pr2_baseline\": \"cached_runs_per_sec from PR 2's committed \
         BENCH_translation_cache.json, same schedule\",\n  \"pr5_baseline\": \
         \"forked_runs_per_sec from PR 5's committed BENCH_prefix_fork.json, same schedule\",\n  \
         \"metric\": \"instrs/s (both sides retire identical instruction streams; no prefix \
         cache on either side)\",\n  \"methodology\": \"interleaved best-of-{INTERLEAVE_ROUNDS} \
         chunks of >={CHUNK_SECS}s per side; both sides warmed first\",\n  \
         \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_block_translation.json");
    std::fs::write(&path, json).expect("write BENCH_block_translation.json");
    println!("wrote {}", path.display());
}

/// One program's telemetry-overhead measurement: the §6 schedule on
/// identical warm sessions with telemetry absent (`None`, the shipped
/// default) and with every pillar live (trace events + metrics +
/// profiler), plus the PR 7 block-translation baseline the "off" side
/// must not regress.
struct TraceOverheadMeasurement {
    program: &'static str,
    runs: u64,
    off_instrs_per_sec: f64,
    on_instrs_per_sec: f64,
    off_runs_per_sec: f64,
    on_runs_per_sec: f64,
    on_events: usize,
}

/// `blocks_instrs_per_sec` committed in PR 7's BENCH_block_translation.json
/// — the engine this PR instrumented, same schedule and seed.
fn pr7_blocks_instrs_per_sec(program: &str) -> Option<f64> {
    match program {
        "JB.team6" => Some(189_982_548.0),
        "JB.team11" => Some(301_979_747.0),
        _ => None,
    }
}

impl TraceOverheadMeasurement {
    /// Throughput lost with every telemetry pillar live, in percent of
    /// the telemetry-off rate.
    fn on_overhead_pct(&self) -> f64 {
        (1.0 - self.on_instrs_per_sec / self.off_instrs_per_sec) * 100.0
    }

    fn off_vs_pr7(&self) -> Option<f64> {
        pr7_blocks_instrs_per_sec(self.program).map(|pr7| self.off_instrs_per_sec / pr7)
    }
}

/// Measure the §6 class campaign with telemetry off and all-on, both on
/// default (block-translating) warm sessions. The "on" side gets a fresh
/// hub each round so the event buffer's memory footprint stays bounded;
/// building a hub and lane is microseconds against a >=0.1s chunk.
fn measure_trace_overhead(name: &'static str, seed: u64) -> TraceOverheadMeasurement {
    use swifi_trace::{Telemetry, TelemetryConfig};

    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(6, seed ^ 0x5EED);
    let all_on = TelemetryConfig {
        trace: true,
        metrics: true,
        profile: true,
        ..TelemetryConfig::default()
    };

    let mut off = RunSession::new(&compiled, p.family);
    let mut on = RunSession::new(&compiled, p.family);
    // Warm-up pass per side: lazy decode and block translation off the
    // measured clock, on both sessions identically.
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        off.run(input, Some(spec), s);
    });
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        on.run(input, Some(spec), s);
    });

    let mut off_acc = Accum::default();
    let mut on_acc = Accum::default();
    let mut on_events = 0usize;
    for _ in 0..INTERLEAVE_ROUNDS {
        time_schedule_chunk(&mut off, &faults, &inputs, seed, &mut off_acc);
        let hub = Telemetry::shared(all_on);
        on.set_telemetry(Some(hub.worker()));
        time_schedule_chunk(&mut on, &faults, &inputs, seed, &mut on_acc);
        on.set_telemetry(None);
        on_events += hub.event_count();
    }
    TraceOverheadMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        off_instrs_per_sec: off_acc.best_instrs_per_sec,
        on_instrs_per_sec: on_acc.best_instrs_per_sec,
        off_runs_per_sec: off_acc.best_runs_per_sec,
        on_runs_per_sec: on_acc.best_runs_per_sec,
        on_events,
    }
}

/// Telemetry no-op-contract bench: the §6 JB schedules with telemetry
/// absent vs every pillar live, recorded to `BENCH_trace_overhead.json`
/// at the repo root. The headline number is the *off* side against PR 7's
/// committed block-translation throughput — disabled telemetry must cost
/// under 1% — with the all-on overhead reported alongside for scale.
fn bench_trace_overhead(_c: &mut Criterion) {
    if !bench_enabled("trace_overhead") {
        return;
    }
    let measurements: Vec<TraceOverheadMeasurement> = ["JB.team6", "JB.team11"]
        .iter()
        .map(|&name| measure_trace_overhead(name, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} off: {:>6.1} Minstr/s  all-on: {:>6.1} Minstr/s  overhead: {:.1}% ({}x vs PR-7 blocks)",
            format!("trace/class_campaign_{}", m.program),
            m.off_instrs_per_sec / 1e6,
            m.on_instrs_per_sec / 1e6,
            m.on_overhead_pct(),
            m.off_vs_pr7()
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "?".into())
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let pr7 = match (pr7_blocks_instrs_per_sec(m.program), m.off_vs_pr7()) {
            (Some(base), Some(s)) => {
                format!("\"pr7_blocks_instrs_per_sec\": {base:.0}, \"off_vs_pr7_blocks\": {s:.3}")
            }
            _ => "\"pr7_blocks_instrs_per_sec\": null, \"off_vs_pr7_blocks\": null".into(),
        };
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \
             \"off_instrs_per_sec\": {:.0}, \"on_instrs_per_sec\": {:.0}, \
             \"off_runs_per_sec\": {:.1}, \"on_runs_per_sec\": {:.1}, \
             \"all_on_overhead_pct\": {:.1}, {pr7}, \"on_trace_events\": {}}}",
            m.program,
            m.runs,
            m.off_instrs_per_sec,
            m.on_instrs_per_sec,
            m.off_runs_per_sec,
            m.on_runs_per_sec,
            m.on_overhead_pct(),
            m.on_events
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x 6 shared inputs (same schedule and seed as \
         BENCH_block_translation)\",\n  \"off\": \"warm default RunSession, telemetry None — the \
         shipped no-telemetry configuration; per-run cost is one Option test\",\n  \"on\": \"warm \
         default RunSession with a WorkerTelemetry lane from an all-pillars hub (trace events + \
         metrics registry + guest-PC profiler), fresh hub per chunk\",\n  \"pr7_baseline\": \
         \"blocks_instrs_per_sec from PR 7's committed BENCH_block_translation.json, same \
         schedule\",\n  \"contract\": \"off_vs_pr7_blocks >= 0.99 — telemetry off must cost under \
         1% of PR 7 throughput (host variance aside); all_on_overhead_pct is informational\",\n  \
         \"metric\": \"instrs/s (both sides retire identical instruction streams)\",\n  \
         \"methodology\": \"interleaved best-of-{INTERLEAVE_ROUNDS} chunks of >={CHUNK_SECS}s per \
         side; both sides warmed first\",\n  \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_trace_overhead.json");
    std::fs::write(&path, json).expect("write BENCH_trace_overhead.json");
    println!("wrote {}", path.display());
}

/// One program's source-mutation pipeline measurement: mutant compile
/// throughput (the cost binary SWIFI avoids by mutating in place) and
/// injected-run throughput on the §6-class schedule (every selected
/// mutant × every shared input, warm baked-image sessions).
struct MutationMeasurement {
    program: &'static str,
    mutants_total: usize,
    mutants_selected: usize,
    compile_mutants_per_sec: f64,
    runs: u64,
    runs_per_sec: f64,
}

/// Measure the G-SWFIT source-mutation pipeline for one program: best-of
/// interleaved chunks, same methodology as the interpreter benches.
fn measure_source_mutation(name: &'static str, seed: u64) -> MutationMeasurement {
    use swifi_campaign::source::SourceMutationSource;
    use swifi_core::source::{FaultSource, PreparedFault};

    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let muts = swifi_lang::mutate::mutants(&compiled.ast);

    // Side 1: mutant compilation rate (parse + sema + codegen per mutant).
    let mut compile_best = 0.0f64;
    for _ in 0..INTERLEAVE_ROUNDS / 2 {
        let mut n = 0u64;
        let t0 = std::time::Instant::now();
        loop {
            for m in &muts {
                criterion::black_box(compile(&m.source).expect("mutant compiles"));
                n += 1;
            }
            if t0.elapsed().as_secs_f64() >= CHUNK_SECS {
                break;
            }
        }
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        if rate > compile_best {
            compile_best = rate;
        }
    }

    // Side 2: injected-run rate on the §6-class schedule — the
    // field-weighted mutant selection at the reduced-scale budget, run as
    // baked images through warm sessions (one per mutant, compile cached).
    let source = SourceMutationSource::from_target(&p, 18);
    let plans = source.plans(seed).expect("mutants compile");
    let inputs = p.family.test_case(6, seed ^ 0x5EED);
    let mut sessions: Vec<RunSession> = plans
        .iter()
        .map(|plan| match &plan.fault {
            PreparedFault::Baked(prog) => RunSession::new(prog, p.family),
            PreparedFault::Runtime(_) => unreachable!("source plans are baked"),
        })
        .collect();
    // Warm-up pass: first snapshot restores and lazy decodes off the clock.
    for s in sessions.iter_mut() {
        for input in &inputs {
            criterion::black_box(s.run_clean(input));
        }
    }
    let mut runs_best = 0.0f64;
    for _ in 0..INTERLEAVE_ROUNDS / 2 {
        let mut n = 0u64;
        let t0 = std::time::Instant::now();
        loop {
            for s in sessions.iter_mut() {
                for input in &inputs {
                    criterion::black_box(s.run_clean(input));
                    n += 1;
                }
            }
            if t0.elapsed().as_secs_f64() >= CHUNK_SECS {
                break;
            }
        }
        let rate = n as f64 / t0.elapsed().as_secs_f64();
        if rate > runs_best {
            runs_best = rate;
        }
    }

    MutationMeasurement {
        program: name,
        mutants_total: muts.len(),
        mutants_selected: plans.len(),
        compile_mutants_per_sec: compile_best,
        runs: plans.len() as u64 * inputs.len() as u64,
        runs_per_sec: runs_best,
    }
}

/// Source-mutation headline bench: mutant compile rate and baked-image
/// run rate for the JB family, recorded to `BENCH_source_mutation.json`
/// at the repo root.
fn bench_source_mutation(_c: &mut Criterion) {
    if !bench_enabled("source_mutation") {
        return;
    }
    let measurements: Vec<MutationMeasurement> = ["JB.team6", "JB.team11"]
        .iter()
        .map(|name| measure_source_mutation(name, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} compile: {:>8.1} mutants/s   run: {:>8.1} runs/s  ({} of {} mutants selected)",
            format!("mutation/source_campaign_{}", m.program),
            m.compile_mutants_per_sec,
            m.runs_per_sec,
            m.mutants_selected,
            m.mutants_total
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"mutants_total\": {}, \"mutants_selected\": {}, \
             \"compile_mutants_per_sec\": {:.1}, \"runs\": {}, \"runs_per_sec\": {:.1}}}",
            m.program,
            m.mutants_total,
            m.mutants_selected,
            m.compile_mutants_per_sec,
            m.runs,
            m.runs_per_sec
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"source_mutation\",\n  \"schedule\": \"G-SWFIT source campaign: \
         field-weighted selection of 18 mutants x 6 shared inputs (the section6-class \
         schedule)\",\n  \"compile\": \"full pipeline (parse + sema + codegen) per mutant \
         source; binary SWIFI mutates in place and skips this cost entirely\",\n  \"run\": \
         \"warm RunSession per baked mutant image, snapshot restore between runs\",\n  \
         \"methodology\": \"best-of-{rounds} chunks of >={CHUNK_SECS}s per side\",\n  \
         \"programs\": [\n{rows}\n  ]\n}}\n",
        rounds = INTERLEAVE_ROUNDS / 2
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_source_mutation.json");
    std::fs::write(&path, json).expect("write BENCH_source_mutation.json");
    println!("wrote {}", path.display());
}

/// One program's trace-guided-pruning measurement on the §6 schedule:
/// the full engine stack (blocks + prefix fork) with pruning off vs on.
struct PruneMeasurement {
    program: &'static str,
    runs: u64,
    unpruned_runs_per_sec: f64,
    pruned_runs_per_sec: f64,
    trace_runs: u64,
    dormant_skips: u64,
    collapse_hits: u64,
    collapse_logged: u64,
    fork_hits: u64,
    instrs_skipped: u64,
}

/// The PR-7 block interpreter's throughput on this same schedule, as
/// committed in PR 7's BENCH_block_translation.json
/// (`blocks_runs_per_sec`) — the strongest prior single-session engine.
fn pr7_blocks_runs_per_sec(program: &str) -> Option<f64> {
    match program {
        "JB.team6" => Some(217_418.5),
        "JB.team11" => Some(21_342.4),
        "C.team10" => Some(23.1),
        _ => None,
    }
}

impl PruneMeasurement {
    fn speedup(&self) -> f64 {
        self.pruned_runs_per_sec / self.unpruned_runs_per_sec
    }

    fn speedup_vs_pr7(&self) -> Option<f64> {
        pr7_blocks_runs_per_sec(self.program).map(|pr7| self.pruned_runs_per_sec / pr7)
    }

    fn speedup_vs_pr2(&self) -> Option<f64> {
        pr2_cached_runs_per_sec(self.program).map(|pr2| self.pruned_runs_per_sec / pr2)
    }
}

/// Measure the §6 class campaign for one program with trace-guided
/// pruning off and on. Both sides run the full prior stack — block
/// interpreter plus prefix-fork cache — so the delta is purely the
/// def-use trace evidence: provable-dormancy skips and
/// outcome-equivalence collapse hits.
fn measure_trace_prune(name: &'static str, n_inputs: usize, seed: u64) -> PruneMeasurement {
    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(n_inputs, seed ^ 0x5EED);

    let mut unpruned = RunSession::new(&compiled, p.family);
    unpruned.set_prefix_cache(Some(swifi_campaign::PrefixCache::shared()));
    let pruned_cache = swifi_campaign::PrefixCache::shared();
    pruned_cache.set_watch_pcs(swifi_campaign::watch_pcs_of(faults.iter().map(|f| &f.spec)));
    let mut pruned = RunSession::new(&compiled, p.family);
    pruned.set_prefix_cache(Some(pruned_cache));
    pruned.set_prune(true, 0);

    // Warm-up pass per side: snapshot captures, the traced clean runs,
    // and the first collapse-class recordings all happen off the clock —
    // the measured chunks are the steady state of a long campaign.
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        unpruned.run(input, Some(spec), s);
    });
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        pruned.run(input, Some(spec), s);
    });

    let mut unpruned_best = 0.0f64;
    let mut pruned_best = 0.0f64;
    for _ in 0..INTERLEAVE_ROUNDS {
        time_schedule_chunk_runs(&mut unpruned, &faults, &inputs, seed, &mut unpruned_best);
        time_schedule_chunk_runs(&mut pruned, &faults, &inputs, seed, &mut pruned_best);
    }
    let stats = pruned.stats();
    PruneMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        unpruned_runs_per_sec: unpruned_best,
        pruned_runs_per_sec: pruned_best,
        trace_runs: stats.prune_trace_runs,
        dormant_skips: stats.prune_dormant_skips,
        collapse_hits: stats.prune_collapse_hits,
        collapse_logged: stats.prune_collapse_logged,
        fork_hits: stats.prefix_fork_hits,
        instrs_skipped: stats.prefix_instrs_skipped,
    }
}

/// Trace-guided pruning headline bench: §6 class campaigns with the
/// full engine stack, pruning off vs on, recorded to
/// `BENCH_trace_prune.json` at the repo root.
fn bench_trace_prune(_c: &mut Criterion) {
    if !bench_enabled("trace_prune") {
        return;
    }
    let measurements: Vec<PruneMeasurement> = [("JB.team6", 6), ("JB.team11", 6), ("C.team10", 2)]
        .iter()
        .map(|&(name, n_inputs)| measure_trace_prune(name, n_inputs, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} unpruned: {:>8.1} runs/s  pruned: {:>8.1} runs/s  speedup: {:.2}x ({}x vs PR-7 blocks, {}x vs PR-2 cached)",
            format!("prune/class_campaign_{}", m.program),
            m.unpruned_runs_per_sec,
            m.pruned_runs_per_sec,
            m.speedup(),
            m.speedup_vs_pr7()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "?".into()),
            m.speedup_vs_pr2()
                .map(|s| format!("{s:.2}"))
                .unwrap_or_else(|| "?".into())
        );
        println!(
            "{:<42} {} trace runs, {} dormant skips, {} collapse hits ({} classes logged), {} fork hits",
            format!("prune/evidence_{}", m.program),
            m.trace_runs,
            m.dormant_skips,
            m.collapse_hits,
            m.collapse_logged,
            m.fork_hits
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let pr7 = match (pr7_blocks_runs_per_sec(m.program), m.speedup_vs_pr7()) {
            (Some(base), Some(s)) => {
                format!("\"pr7_blocks_runs_per_sec\": {base:.1}, \"speedup_vs_pr7_blocks\": {s:.2}")
            }
            _ => "\"pr7_blocks_runs_per_sec\": null, \"speedup_vs_pr7_blocks\": null".into(),
        };
        let pr2 = match (pr2_cached_runs_per_sec(m.program), m.speedup_vs_pr2()) {
            (Some(base), Some(s)) => {
                format!("\"pr2_cached_runs_per_sec\": {base:.1}, \"speedup_vs_pr2_cached\": {s:.2}")
            }
            _ => "\"pr2_cached_runs_per_sec\": null, \"speedup_vs_pr2_cached\": null".into(),
        };
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \
             \"unpruned_runs_per_sec\": {:.1}, \"pruned_runs_per_sec\": {:.1}, \
             \"runs_speedup\": {:.2}, {pr7}, {pr2}, \
             \"trace_runs\": {}, \"dormant_skips\": {}, \"collapse_hits\": {}, \
             \"collapse_classes_logged\": {}, \"fork_hits\": {}, \"instrs_skipped\": {}}}",
            m.program,
            m.runs,
            m.unpruned_runs_per_sec,
            m.pruned_runs_per_sec,
            m.speedup(),
            m.trace_runs,
            m.dormant_skips,
            m.collapse_hits,
            m.collapse_logged,
            m.fork_hits,
            m.instrs_skipped
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"trace_prune\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x shared inputs (6 for JB, 2 for Camelot)\",\n  \"unpruned\": \"warm \
         RunSession, block interpreter + prefix-fork cache, pruning disabled (--no-prune; the \
         PR 7-era engine stack)\",\n  \"pruned\": \"same stack plus trace-guided pruning: one \
         def-use traced clean run per input proves dormancy for overwritten-before-use \
         corruption, and identical corruption logs collapse into their recorded \
         representative\",\n  \"pr7_baseline\": \"blocks_runs_per_sec from PR 7's committed \
         BENCH_block_translation.json, same schedule\",\n  \"pr2_baseline\": \
         \"cached_runs_per_sec from PR 2's committed BENCH_translation_cache.json, same \
         schedule\",\n  \"metric\": \"runs/s: pruned runs skip whole executions by proof, \
         which is the speedup\",\n  \"methodology\": \"interleaved best-of-{INTERLEAVE_ROUNDS} \
         chunks of >={CHUNK_SECS}s per side; both sides warmed first so measured chunks are \
         the steady state\",\n  \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_trace_prune.json");
    std::fs::write(&path, json).expect("write BENCH_trace_prune.json");
    println!("wrote {}", path.display());
}

/// Interned-key lookup micro-bench: the prefix cache's hot probes hash
/// a `(u32, u32, u64, …)` key after interning the input once; before
/// interning every probe hashed (and every insert cloned) the full
/// [`TestInput`]. Measures both shapes on the same population.
fn bench_intern_lookup(_c: &mut Criterion) {
    if !bench_enabled("intern_lookup") {
        return;
    }
    use std::collections::HashMap;
    let p = program("JB.team11").unwrap();
    let inputs = p.family.test_case(32, 0xB007);
    let cache = swifi_campaign::PrefixCache::new();
    let mut full_key: HashMap<(TestInput, u32, u64), bool> = HashMap::new();
    for (i, input) in inputs.iter().enumerate() {
        for pc in 0..8u32 {
            cache.record_shallow(input, 0x100 + 4 * pc, i as u64);
            full_key.insert((input.clone(), 0x100 + 4 * pc, i as u64), true);
        }
    }

    type LookupFn<'a> = Box<dyn FnMut(&TestInput, u32, u64) -> bool + 'a>;
    let probe = |label: &str, mut hit: LookupFn| -> f64 {
        let mut best = 0.0f64;
        for _ in 0..INTERLEAVE_ROUNDS {
            let mut lookups = 0u64;
            let t0 = std::time::Instant::now();
            loop {
                for (i, input) in inputs.iter().enumerate() {
                    for pc in 0..8u32 {
                        criterion::black_box(hit(input, 0x100 + 4 * pc, i as u64));
                        lookups += 1;
                    }
                }
                if t0.elapsed().as_secs_f64() >= CHUNK_SECS {
                    break;
                }
            }
            let rate = lookups as f64 / t0.elapsed().as_secs_f64();
            if rate > best {
                best = rate;
            }
        }
        println!("intern/{label:<34} {:>8.1} Mlookups/s", best / 1e6);
        best
    };

    let interned = probe(
        "shallow_probe_interned",
        Box::new(|input, pc, occ| cache.is_shallow(input, pc, occ)),
    );
    let cloned = probe(
        "shallow_probe_full_testinput_key",
        Box::new(|input, pc, occ| {
            full_key
                .get(&(input.clone(), pc, occ))
                .copied()
                .unwrap_or(false)
        }),
    );
    println!(
        "intern/{:<34} {:>8.2}x interned vs full-key",
        "speedup",
        interned / cloned
    );
}

criterion_group!(
    benches,
    bench_vm_throughput,
    bench_injector_overhead,
    bench_compiler,
    bench_campaign_run,
    bench_warm_reboot,
    bench_translation_cache,
    bench_prefix_fork,
    bench_block_translation,
    bench_trace_overhead,
    bench_source_mutation,
    bench_trace_prune,
    bench_intern_lookup
);
criterion_main!(benches);
