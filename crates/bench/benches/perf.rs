//! Criterion performance benches for the substrate: VM interpreter
//! throughput, compiler speed, injector hook overhead, and end-to-end
//! campaign run rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swifi_core::fault::FaultSpec;
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::compile;
use swifi_programs::{program, Family, TestInput};
use swifi_vm::asm::assemble;
use swifi_vm::machine::{Machine, MachineConfig};
use swifi_vm::Noop;

/// A tight 1M-instruction count-down loop.
fn countdown_image() -> swifi_vm::Image {
    assemble(
        "li r5, 250000
         loop:
         addi r5, r5, -1
         cmpi cr0, r5, 0
         bc cr0.gt, 1, loop
         li r3, 0
         halt",
    )
    .expect("assembles")
}

fn bench_vm_throughput(c: &mut Criterion) {
    let image = countdown_image();
    let mut group = c.benchmark_group("vm");
    // ~1M retired instructions per iteration.
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("interpreter_1M_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let out = m.run(&mut Noop);
            assert!(out.is_normal());
            m.retired()
        })
    });
    group.finish();
}

fn bench_injector_overhead(c: &mut Criterion) {
    let image = countdown_image();
    // A dormant fault at an unexecuted address: measures pure hook cost.
    let fault = FaultSpec::replace_instr(0x1000, 0);
    let mut group = c.benchmark_group("injector");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("armed_but_dormant_1M_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 0).unwrap();
            inj.prepare(&mut m).unwrap();
            let out = m.run(&mut inj);
            assert!(out.is_normal());
        })
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let src = program("C.team9").unwrap().source_correct;
    let mut group = c.benchmark_group("compiler");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("compile_cteam9", |b| {
        b.iter(|| compile(src).expect("compiles"))
    });
    group.finish();
}

fn bench_campaign_run(c: &mut Criterion) {
    let p = program("JB.team11").unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let input = TestInput::JamesB { seed: 7, line: b"benchmark line".to_vec() };
    let set = swifi_core::locations::generate_error_set(&compiled.debug, 3, 3, 1);
    let fault = set.assign_faults[0].spec;
    c.bench_function("campaign/one_injected_run_jamesb", |b| {
        b.iter(|| {
            swifi_campaign::execute(&compiled, Family::JamesB, &input, Some(&fault), 1)
        })
    });
    let cam = program("C.team8").unwrap();
    let cam_compiled = compile(cam.source_correct).unwrap();
    let cam_input = TestInput::Camelot { pieces: vec![(0, 0), (3, 4), (6, 2)] };
    c.bench_function("campaign/one_clean_run_camelot", |b| {
        b.iter(|| swifi_campaign::execute(&cam_compiled, Family::Camelot, &cam_input, None, 1))
    });
}

criterion_group!(
    benches,
    bench_vm_throughput,
    bench_injector_overhead,
    bench_compiler,
    bench_campaign_run
);
criterion_main!(benches);
