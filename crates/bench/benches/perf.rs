//! Criterion performance benches for the substrate: VM interpreter
//! throughput, compiler speed, injector hook overhead, end-to-end
//! campaign run rate, and the warm-reboot vs cold-boot comparison that
//! backs `BENCH_warm_reboot.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use swifi_campaign::section6::chosen_locations;
use swifi_campaign::RunSession;
use swifi_core::fault::FaultSpec;
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::compile;
use swifi_programs::{program, Family, TestInput};
use swifi_vm::asm::assemble;
use swifi_vm::machine::{Machine, MachineConfig};
use swifi_vm::Noop;

/// A tight 1M-instruction count-down loop.
fn countdown_image() -> swifi_vm::Image {
    assemble(
        "li r5, 250000
         loop:
         addi r5, r5, -1
         cmpi cr0, r5, 0
         bc cr0.gt, 1, loop
         li r3, 0
         halt",
    )
    .expect("assembles")
}

fn bench_vm_throughput(c: &mut Criterion) {
    let image = countdown_image();
    let mut group = c.benchmark_group("vm");
    // ~1M retired instructions per iteration.
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("interpreter_1M_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let out = m.run(&mut Noop);
            assert!(out.is_normal());
            m.retired()
        })
    });
    group.finish();
}

fn bench_injector_overhead(c: &mut Criterion) {
    let image = countdown_image();
    // A dormant fault at an unexecuted address: measures pure hook cost.
    let fault = FaultSpec::replace_instr(0x1000, 0);
    let mut group = c.benchmark_group("injector");
    group.throughput(Throughput::Elements(1_000_000));
    group.bench_function("armed_but_dormant_1M_instr", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image);
            let mut inj = Injector::new(vec![fault], TriggerMode::Hardware, 0).unwrap();
            inj.prepare(&mut m).unwrap();
            let out = m.run(&mut inj);
            assert!(out.is_normal());
        })
    });
    group.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let src = program("C.team9").unwrap().source_correct;
    let mut group = c.benchmark_group("compiler");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("compile_cteam9", |b| {
        b.iter(|| compile(src).expect("compiles"))
    });
    group.finish();
}

fn bench_campaign_run(c: &mut Criterion) {
    let p = program("JB.team11").unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let input = TestInput::JamesB {
        seed: 7,
        line: b"benchmark line".to_vec(),
    };
    let set = swifi_core::locations::generate_error_set(&compiled.debug, 3, 3, 1);
    let fault = set.assign_faults[0].spec;
    c.bench_function("campaign/one_injected_run_jamesb", |b| {
        b.iter(|| swifi_campaign::execute(&compiled, Family::JamesB, &input, Some(&fault), 1))
    });
    let cam = program("C.team8").unwrap();
    let cam_compiled = compile(cam.source_correct).unwrap();
    let cam_input = TestInput::Camelot {
        pieces: vec![(0, 0), (3, 4), (6, 2)],
    };
    c.bench_function("campaign/one_clean_run_camelot", |b| {
        b.iter(|| swifi_campaign::execute(&cam_compiled, Family::Camelot, &cam_input, None, 1))
    });
}

/// One JB-family program's cold-vs-warm measurement.
struct RebootMeasurement {
    program: &'static str,
    runs: u64,
    cold_runs_per_sec: f64,
    warm_runs_per_sec: f64,
    /// Per-run reboot overhead, cold lifecycle: `Machine::new` + `load` +
    /// `Injector::new` + `prepare` (everything except guest execution).
    cold_reboot_ns: f64,
    /// Per-run reboot overhead, warm lifecycle: `restore` + `reset` +
    /// `prepare`.
    warm_reboot_ns: f64,
}

impl RebootMeasurement {
    fn speedup(&self) -> f64 {
        self.warm_runs_per_sec / self.cold_runs_per_sec
    }

    fn reboot_speedup(&self) -> f64 {
        self.cold_reboot_ns / self.warm_reboot_ns
    }
}

/// Replay one program's class-campaign schedule (every generated fault ×
/// every shared input, exactly the §6 loop) through a lifecycle `run`
/// closure, returning runs/second.
fn time_schedule(
    faults: &[swifi_core::locations::GeneratedFault],
    inputs: &[TestInput],
    seed: u64,
    mut run: impl FnMut(&TestInput, &FaultSpec, u64),
) -> f64 {
    let t0 = std::time::Instant::now();
    let mut runs = 0u64;
    for fault in faults {
        for (i, input) in inputs.iter().enumerate() {
            let run_seed = seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(fault.site_addr as u64)
                .wrapping_add(i as u64);
            run(input, &fault.spec, run_seed);
            runs += 1;
        }
    }
    runs as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Time just the reboot portion of both lifecycles (no guest execution):
/// cold = `Machine::new` + `load` + `Injector::new` + `prepare` per run;
/// warm = `restore` + `reset` + `prepare` per run.
fn measure_reboot_overhead(
    compiled: &swifi_lang::Program,
    family: Family,
    spec: FaultSpec,
) -> (f64, f64) {
    use swifi_campaign::runner::campaign_config;
    const N: u32 = 2000;
    let t0 = std::time::Instant::now();
    for i in 0..N {
        let mut m = Machine::new(campaign_config(family));
        m.load(&compiled.image);
        let mut inj = Injector::new(vec![spec], TriggerMode::Hardware, i as u64).unwrap();
        inj.set_reference_dispatch(true);
        inj.prepare(&mut m).unwrap();
        criterion::black_box(&m);
    }
    let cold_ns = t0.elapsed().as_nanos() as f64 / N as f64;

    let mut m = Machine::new(campaign_config(family));
    m.load(&compiled.image);
    let snap = m.snapshot();
    let mut inj = Injector::new(vec![spec], TriggerMode::Hardware, 0).unwrap();
    let t0 = std::time::Instant::now();
    for i in 0..N {
        m.restore(&snap);
        inj.reset(i as u64);
        inj.prepare(&mut m).unwrap();
        criterion::black_box(&m);
    }
    let warm_ns = t0.elapsed().as_nanos() as f64 / N as f64;
    (cold_ns, warm_ns)
}

/// Measure the §6 class campaign for one JB program under both machine
/// lifecycles: cold boot (fresh machine + fresh injector per run, the
/// pre-`RunSession` engine) and warm reboot (one session, snapshot
/// restore between runs).
fn measure_reboot(name: &'static str, seed: u64) -> RebootMeasurement {
    let p = program(name).unwrap();
    let compiled = compile(p.source_correct).unwrap();
    let (n_assign, n_check) = chosen_locations(name);
    let set = swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
    let faults: Vec<_> = set
        .assign_faults
        .iter()
        .chain(set.check_faults.iter())
        .cloned()
        .collect();
    let inputs = p.family.test_case(6, seed ^ 0x5EED);

    // Warm-up pass so page-cache / allocator effects hit both sides evenly.
    let mut session = RunSession::new(&compiled, p.family);
    let _ = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        session.run(input, Some(spec), s);
    });

    let cold_runs_per_sec = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        swifi_campaign::execute_cold(&compiled, p.family, input, Some(spec), s);
    });
    let mut session = RunSession::new(&compiled, p.family);
    let warm_runs_per_sec = time_schedule(&faults, &inputs, seed, |input, spec, s| {
        session.run(input, Some(spec), s);
    });
    let (cold_reboot_ns, warm_reboot_ns) =
        measure_reboot_overhead(&compiled, p.family, faults[0].spec);
    RebootMeasurement {
        program: name,
        runs: faults.len() as u64 * inputs.len() as u64,
        cold_runs_per_sec,
        warm_runs_per_sec,
        cold_reboot_ns,
        warm_reboot_ns,
    }
}

/// Warm-reboot headline bench: §6 class campaigns for the JB family under
/// both lifecycles, recorded to `BENCH_warm_reboot.json` at the repo root.
fn bench_warm_reboot(_c: &mut Criterion) {
    let measurements: Vec<RebootMeasurement> = ["JB.team6", "JB.team11"]
        .iter()
        .map(|name| measure_reboot(name, 0xB007))
        .collect();
    let mut rows = String::new();
    for m in &measurements {
        println!(
            "{:<42} cold: {:>8.1} runs/s   warm: {:>8.1} runs/s   campaign speedup: {:.1}x",
            format!("reboot/class_campaign_{}", m.program),
            m.cold_runs_per_sec,
            m.warm_runs_per_sec,
            m.speedup()
        );
        println!(
            "{:<42} cold: {:>8.2} us/run  warm: {:>8.2} us/run  reboot speedup: {:.0}x",
            format!("reboot/lifecycle_overhead_{}", m.program),
            m.cold_reboot_ns / 1000.0,
            m.warm_reboot_ns / 1000.0,
            m.reboot_speedup()
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"program\": \"{}\", \"runs\": {}, \"cold_runs_per_sec\": {:.1}, \
             \"warm_runs_per_sec\": {:.1}, \"campaign_speedup\": {:.2}, \
             \"cold_reboot_us_per_run\": {:.3}, \"warm_reboot_us_per_run\": {:.3}, \
             \"reboot_overhead_speedup\": {:.1}}}",
            m.program,
            m.runs,
            m.cold_runs_per_sec,
            m.warm_runs_per_sec,
            m.speedup(),
            m.cold_reboot_ns / 1000.0,
            m.warm_reboot_ns / 1000.0,
            m.reboot_speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"warm_reboot\",\n  \"schedule\": \"section6 class campaign, all \
         generated faults x 6 shared inputs\",\n  \"cold\": \"seed lifecycle: fresh Machine + \
         load + fresh Injector (reference dispatch) per run\",\n  \"warm\": \"one RunSession: \
         snapshot restore + injector reset per run, hot-path dispatch\",\n  \
         \"reboot_overhead\": \"per-run lifecycle cost excluding guest execution; the campaign \
         speedup is Amdahl-capped by guest execution time\",\n  \"programs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_warm_reboot.json");
    std::fs::write(&path, json).expect("write BENCH_warm_reboot.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_vm_throughput,
    bench_injector_overhead,
    bench_compiler,
    bench_campaign_run,
    bench_warm_reboot
);
criterion_main!(benches);
