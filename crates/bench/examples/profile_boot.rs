//! One-off profiling helper: where does a campaign run's time go?
//! (cold boot pieces vs warm-reboot pieces). Not part of the test suite.

use std::time::Instant;
use swifi_campaign::runner::campaign_config;
use swifi_campaign::RunSession;
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::compile;
use swifi_programs::{program, Family};
use swifi_vm::machine::Machine;

fn time<R>(label: &str, iters: u64, mut f: impl FnMut() -> R) {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<40} {:.2} us", ns / 1000.0);
}

fn main() {
    for name in ["JB.team6", "JB.team11"] {
        println!("== {name}");
        let p = program(name).unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let inputs = p.family.test_case(6, 0xB007 ^ 0x5EED);
        let set = swifi_core::locations::generate_error_set(&compiled.debug, 5, 5, 0xB007);
        let spec = set.assign_faults[0].spec;

        time("Machine::new(campaign_config)", 2000, || {
            Machine::new(campaign_config(Family::JamesB))
        });
        let mut m = Machine::new(campaign_config(Family::JamesB));
        time("load(image)", 2000, || m.load(&compiled.image));
        time("Machine::new + load", 2000, || {
            let mut m = Machine::new(campaign_config(Family::JamesB));
            m.load(&compiled.image);
            m
        });
        time("snapshot", 200, || m.snapshot());
        let snap = m.snapshot();
        time("restore (clean)", 2000, || m.restore(&snap));
        time("Injector::new(1 fault)", 2000, || {
            Injector::new(vec![spec], TriggerMode::Hardware, 1).unwrap()
        });
        time("expected_output", 2000, || inputs[0].expected_output());
        time("to_tape", 2000, || inputs[0].to_tape());

        let mut session = RunSession::new(&compiled, Family::JamesB);
        time("warm clean run", 500, || session.run_clean(&inputs[0]));
        time("warm injected run", 500, || {
            session.run(&inputs[0], Some(&spec), 1)
        });
        time("cold injected run (execute_cold)", 500, || {
            swifi_campaign::execute_cold(&compiled, Family::JamesB, &inputs[0], Some(&spec), 1)
        });
        time("one-shot session run (execute)", 500, || {
            swifi_campaign::execute(&compiled, Family::JamesB, &inputs[0], Some(&spec), 1)
        });
    }
}
