//! Dev probe: steady-state prefix-fork savings per §6 schedule.
//!
//! For each single-core §6 target, replays the class-campaign schedule
//! twice through a fork-enabled session (pass 1 captures snapshots,
//! pass 2 is pure fork hits) and once through a fork-off session, then
//! prints the share of prefix instructions skipped and the wall-clock
//! ratio. Used to pick deep-trigger schedules for `bench_prefix_fork`.

use swifi_campaign::section6::chosen_locations;
use swifi_campaign::{PrefixCache, RunSession};
use swifi_lang::compile;
use swifi_programs::program;

fn main() {
    for name in ["C.team1", "C.team2", "C.team8", "C.team9", "C.team10"] {
        let p = program(name).unwrap();
        let compiled = compile(p.source_correct).unwrap();
        let (n_assign, n_check) = chosen_locations(name);
        let seed = 0xB007u64;
        let set =
            swifi_core::locations::generate_error_set(&compiled.debug, n_assign, n_check, seed);
        let faults: Vec<_> = set
            .assign_faults
            .iter()
            .chain(set.check_faults.iter())
            .cloned()
            .collect();
        let inputs = p.family.test_case(6, seed ^ 0x5EED);

        let schedule = |session: &mut RunSession| {
            let t0 = std::time::Instant::now();
            for fault in &faults {
                for (i, input) in inputs.iter().enumerate() {
                    let run_seed = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(fault.site_addr as u64)
                        .wrapping_add(i as u64);
                    session.run(input, Some(&fault.spec), run_seed);
                }
            }
            t0.elapsed().as_secs_f64()
        };

        let mut full = RunSession::new(&compiled, p.family);
        let mut forked = RunSession::new(&compiled, p.family);
        forked.set_prefix_cache(Some(PrefixCache::shared()));
        let _ = schedule(&mut full); // warm-up
        let _ = schedule(&mut forked); // capture pass
        let s1 = forked.stats();
        let full_secs = schedule(&mut full);
        let fork_secs = schedule(&mut forked);
        let s2 = forked.stats();
        let skipped = s2.prefix_instrs_skipped - s1.prefix_instrs_skipped;
        let executed = s2.retired_instrs - s1.retired_instrs;
        println!(
            "{name:<10} runs {:>4}  skipped {:>5.1}%  hits {:>4}  dormant {:>3}  full {:>7.1} r/s  forked {:>7.1} r/s  ratio {:.2}x",
            faults.len() * inputs.len(),
            skipped as f64 * 100.0 / (skipped + executed).max(1) as f64,
            s2.prefix_fork_hits - s1.prefix_fork_hits,
            s2.prefix_dormant_short_circuits - s1.prefix_dormant_short_circuits,
            (faults.len() * inputs.len()) as f64 / full_secs,
            (faults.len() * inputs.len()) as f64 / fork_secs,
            full_secs / fork_secs
        );
    }
}
