//! Per-program interpreter throughput probe.
//!
//! `SWIFI_INTERP` selects the interpreter:
//! - `cached` (default): predecoded translation cache
//! - `reference`: the seed decode-every-fetch interpreter
//! - `compare`: run both and print the speedup per program
//!
//! Used by `scripts/perf_smoke.sh` as a cheap, non-gating sanity check
//! that the cache is actually faster than the reference path.

use std::time::Instant;
use swifi_lang::compile;
use swifi_vm::machine::{Machine, MachineConfig};
use swifi_vm::Noop;

const PROGRAMS: [&str; 7] = [
    "C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "SOR",
];

/// Run every shared input for `name` under one interpreter; returns
/// (retired instructions, elapsed seconds).
fn measure(name: &str, reference: bool) -> (u64, f64) {
    let p = swifi_programs::program(name).unwrap();
    let c = compile(p.source_correct).unwrap();
    let inputs = p.family.test_case(5, 7);
    let mut total = 0u64;
    let t0 = Instant::now();
    for input in &inputs {
        let mut m = Machine::new(MachineConfig {
            num_cores: p.family.cores(),
            budget: p.family.run_budget(),
            ..MachineConfig::default()
        });
        m.set_reference_interp(reference);
        m.load(&c.image);
        m.set_input(input.to_tape());
        let _ = m.run(&mut Noop);
        total += m.retired();
    }
    (total, t0.elapsed().as_secs_f64())
}

fn main() {
    let mode = std::env::var("SWIFI_INTERP").unwrap_or_else(|_| "cached".to_string());
    match mode.as_str() {
        "cached" | "reference" => {
            let reference = mode == "reference";
            let mut grand_instrs = 0u64;
            let mut grand_secs = 0f64;
            for name in PROGRAMS {
                let (total, dt) = measure(name, reference);
                grand_instrs += total;
                grand_secs += dt;
                println!(
                    "{:10} avg {:>10} instr/run, {:>6.1} ms/run, {:.0}M instr/s",
                    name,
                    total / 5,
                    dt * 200.0,
                    total as f64 / dt / 1e6
                );
            }
            println!(
                "TOTAL {mode}: {:.0}M instr/s",
                grand_instrs as f64 / grand_secs / 1e6
            );
        }
        "compare" => {
            let mut grand_ref = 0f64;
            let mut grand_cached = 0f64;
            for name in PROGRAMS {
                let (n_ref, dt_ref) = measure(name, true);
                let (n_cached, dt_cached) = measure(name, false);
                assert_eq!(
                    n_ref, n_cached,
                    "{name}: interpreters must retire identical instruction counts"
                );
                let r = n_ref as f64 / dt_ref / 1e6;
                let c = n_cached as f64 / dt_cached / 1e6;
                grand_ref += dt_ref;
                grand_cached += dt_cached;
                println!(
                    "{name:10} reference {r:>7.0}M instr/s   cached {c:>7.0}M instr/s   {:.2}x",
                    c / r
                );
            }
            println!(
                "TOTAL compare: cached is {:.2}x reference (wall clock)",
                grand_ref / grand_cached
            );
        }
        other => {
            eprintln!("SWIFI_INTERP={other}: expected cached|reference|compare");
            std::process::exit(2);
        }
    }
}
