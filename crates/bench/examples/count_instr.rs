use std::time::Instant;
use swifi_lang::compile;
use swifi_vm::machine::{Machine, MachineConfig};
use swifi_vm::Noop;

fn main() {
    for name in [
        "C.team1", "C.team2", "C.team8", "C.team9", "C.team10", "JB.team6", "SOR",
    ] {
        let p = swifi_programs::program(name).unwrap();
        let c = compile(p.source_correct).unwrap();
        let inputs = p.family.test_case(5, 7);
        let mut total = 0u64;
        let t0 = Instant::now();
        for input in &inputs {
            let mut m = Machine::new(MachineConfig {
                num_cores: p.family.cores(),
                budget: p.family.run_budget(),
                ..MachineConfig::default()
            });
            m.load(&c.image);
            m.set_input(input.to_tape());
            let _ = m.run(&mut Noop);
            total += m.retired();
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{:10} avg {:>10} instr/run, {:>6.1} ms/run, {:.0}M instr/s",
            name,
            total / 5,
            dt * 200.0,
            total as f64 / dt / 1e6
        );
    }
}
