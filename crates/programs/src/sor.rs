//! SOR: the "real life" parallel program of the paper's Table 2 — a
//! red-black successive over-relaxation Laplace solver running on all four
//! cores of the machine, with barrier synchronisation between phases.
//!
//! Fixed-point integer arithmetic (ω = 1.5 as `x + 3·(avg−x)/2`) keeps the
//! computation exact and deterministic, matching
//! [`crate::oracle::sor_solve_full`] cell for cell. Core 0 reads the input
//! and prints the report; rows are partitioned across cores in contiguous
//! bands. After the relaxation iterations every core computes its band's
//! residual contribution, and core 0 aggregates and prints
//! `checksum min max residual`.
//!
//! As in the paper, SOR is the largest target program by a wide margin.

/// The SOR program (no planted fault; §6 target only).
pub const SOR: &str = r#"
// SOR - parallel Laplace solver, red-black over-relaxation, 4 cores.
// Fixed-point integers; omega = 1.5 implemented as x + 3*(avg - x)/2.
// Report: checksum, interior minimum, interior maximum, L1 residual.

int grid[26][26];
int n;
int iters;
int top_v;
int bottom_v;
int left_v;
int right_v;
int partial_res[8];
int band_lo[8];
int band_hi[8];

void read_input() {
    n = read_int();
    iters = read_int();
    top_v = read_int();
    bottom_v = read_int();
    left_v = read_int();
    right_v = read_int();
}

void clamp_input() {
    if (n < 1) {
        n = 1;
    }
    if (n > 24) {
        n = 24;
    }
    if (iters < 0) {
        iters = 0;
    }
    if (iters > 500) {
        iters = 500;
    }
}

void clear_interior() {
    int i;
    int j;
    for (i = 1; i <= n; i = i + 1) {
        for (j = 1; j <= n; j = j + 1) {
            grid[i][j] = 0;
        }
    }
}

void set_top_boundary() {
    int j;
    for (j = 0; j <= n + 1; j = j + 1) {
        grid[0][j] = top_v;
    }
}

void set_bottom_boundary() {
    int j;
    for (j = 0; j <= n + 1; j = j + 1) {
        grid[n + 1][j] = bottom_v;
    }
}

void set_side_boundaries() {
    int i;
    for (i = 1; i <= n; i = i + 1) {
        grid[i][0] = left_v;
        grid[i][n + 1] = right_v;
    }
}

void init_grid() {
    clear_interior();
    set_top_boundary();
    set_bottom_boundary();
    set_side_boundaries();
}

void plan_bands() {
    int c;
    int p;
    p = num_cores();
    for (c = 0; c < p; c = c + 1) {
        band_lo[c] = 1 + (n * c) / p;
        band_hi[c] = 1 + (n * (c + 1)) / p;
        partial_res[c] = 0;
    }
}

int neighbor_avg(int i, int j) {
    int above;
    int below;
    int before;
    int after;
    above = grid[i - 1][j];
    below = grid[i + 1][j];
    before = grid[i][j - 1];
    after = grid[i][j + 1];
    return (above + below + before + after) / 4;
}

int relax_cell(int i, int j) {
    int avg;
    int old;
    int next;
    avg = neighbor_avg(i, j);
    old = grid[i][j];
    next = old + (3 * (avg - old)) / 2;
    return next;
}

void relax_row(int i, int parity) {
    int j;
    for (j = 1; j <= n; j = j + 1) {
        if ((i + j) % 2 == parity) {
            grid[i][j] = relax_cell(i, j);
        }
    }
}

void relax_band(int lo, int hi, int parity) {
    int i;
    for (i = lo; i < hi; i = i + 1) {
        relax_row(i, parity);
    }
}

int cell_residual(int i, int j) {
    int avg;
    int diff;
    avg = neighbor_avg(i, j);
    diff = avg - grid[i][j];
    if (diff < 0) {
        diff = -diff;
    }
    return diff;
}

int band_residual(int lo, int hi) {
    int i;
    int j;
    int acc;
    acc = 0;
    for (i = lo; i < hi; i = i + 1) {
        for (j = 1; j <= n; j = j + 1) {
            acc = acc + cell_residual(i, j);
        }
    }
    return acc;
}

int checksum() {
    int i;
    int j;
    int sum;
    sum = 0;
    for (i = 1; i <= n; i = i + 1) {
        for (j = 1; j <= n; j = j + 1) {
            sum = sum + grid[i][j];
        }
    }
    return sum;
}

int interior_min() {
    int i;
    int j;
    int lowest;
    lowest = grid[1][1];
    for (i = 1; i <= n; i = i + 1) {
        for (j = 1; j <= n; j = j + 1) {
            if (grid[i][j] < lowest) {
                lowest = grid[i][j];
            }
        }
    }
    return lowest;
}

int interior_max() {
    int i;
    int j;
    int highest;
    highest = grid[1][1];
    for (i = 1; i <= n; i = i + 1) {
        for (j = 1; j <= n; j = j + 1) {
            if (grid[i][j] > highest) {
                highest = grid[i][j];
            }
        }
    }
    return highest;
}

int total_residual() {
    int c;
    int p;
    int acc;
    p = num_cores();
    acc = 0;
    for (c = 0; c < p; c = c + 1) {
        acc = acc + partial_res[c];
    }
    return acc;
}

void report() {
    print_int(checksum());
    print_char(' ');
    print_int(interior_min());
    print_char(' ');
    print_int(interior_max());
    print_char(' ');
    print_int(total_residual());
}

void main() {
    int id;
    int it;
    int par;
    int lo;
    int hi;

    id = core_id();

    if (id == 0) {
        read_input();
        clamp_input();
        init_grid();
        plan_bands();
    }
    barrier();

    lo = band_lo[id];
    hi = band_hi[id];

    for (it = 0; it < iters; it = it + 1) {
        for (par = 0; par < 2; par = par + 1) {
            relax_band(lo, hi, par);
            barrier();
        }
    }

    partial_res[id] = band_residual(lo, hi);
    barrier();

    if (id == 0) {
        report();
    }
}
"#;
