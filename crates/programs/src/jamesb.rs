//! The JamesB program family: three independently designed MiniC
//! implementations of the string-coding specification (paper §4.2: "about
//! 100 code lines" each).
//!
//! Specification (all teams must match [`crate::oracle::jamesb_output`]):
//! read a seed and a line (≤ 80 chars); print the coded line, a newline,
//! and a position-weighted checksum of the input mod 9973. Printable
//! characters are rotated within the 95-char printable window by
//! `seed % 95` plus the character position; other bytes pass through.

/// JB.team6, corrected version: index-based, arrays sized 81 so an
/// 80-character line plus terminator fits.
pub const JB_TEAM6_CORRECT: &str = r#"
// JB.team6 - string coder, index-based implementation
void main() {
    char phrase[81];
    char phrase2[81];
    int check;
    int len;
    int seed;
    int s;
    int i;
    int c;
    int x;

    seed = read_int();
    len = 0;
    c = read_byte();
    while (c != '\n' && c != -1 && len < 80) {
        phrase[len] = c;
        len = len + 1;
        c = read_byte();
    }
    phrase[len] = 0;

    check = 0;
    for (i = 0; i < len; i = i + 1) {
        check = check + phrase[i] * (i + 1);
    }
    check = check % 9973;

    s = seed % 95;
    for (i = 0; i < len; i = i + 1) {
        x = phrase[i];
        if (x < 32 || x > 126) {
            phrase2[i] = x;
        } else {
            phrase2[i] = 32 + (x - 32 + s + i) % 95;
        }
    }
    phrase2[len] = 0;

    print_str(phrase2);
    print_char('\n');
    print_int(check);
}
"#;

/// JB.team6, the real fault: both buffers declared one byte short
/// (`[80]`, should be `[81]`). When the input line is exactly 80
/// characters long, `phrase2[len] = 0` lands one byte past the buffer —
/// in the corrected build that byte is padding, in the faulty build it is
/// the low byte of `check`, which is then printed corrupted.
///
/// This is the paper's Figure 4 fault: an *assignment* defect whose
/// machine-level footprint is a shift of every later stack displacement,
/// needing far more fault triggers than the two hardware breakpoint
/// registers provide.
pub const JB_TEAM6_FAULTY: &str = r#"
// JB.team6 - string coder, index-based implementation
void main() {
    char phrase[80];
    char phrase2[80];
    int check;
    int len;
    int seed;
    int s;
    int i;
    int c;
    int x;

    seed = read_int();
    len = 0;
    c = read_byte();
    while (c != '\n' && c != -1 && len < 80) {
        phrase[len] = c;
        len = len + 1;
        c = read_byte();
    }
    phrase[len] = 0;

    check = 0;
    for (i = 0; i < len; i = i + 1) {
        check = check + phrase[i] * (i + 1);
    }
    check = check % 9973;

    s = seed % 95;
    for (i = 0; i < len; i = i + 1) {
        x = phrase[i];
        if (x < 32 || x > 126) {
            phrase2[i] = x;
        } else {
            phrase2[i] = 32 + (x - 32 + s + i) % 95;
        }
    }
    phrase2[len] = 0;

    print_str(phrase2);
    print_char('\n');
    print_int(check);
}
"#;

/// JB.team7, corrected version: helper-function design with add-then-wrap
/// coding and a running checksum reduced at the end.
pub const JB_TEAM7_CORRECT: &str = r#"
// JB.team7 - string coder, helper-function implementation
int wrap_code(int x, int k) {
    int y;
    if (x < 32) { return x; }
    if (x > 126) { return x; }
    y = x + k;
    while (y > 126) {
        y = y - 95;
    }
    return y;
}

void main() {
    char line[81];
    char coded[81];
    int total;
    int n;
    int key;
    int pos;
    int ch;

    key = read_int();
    key = key % 95;

    n = 0;
    ch = read_byte();
    while (ch != '\n' && ch != -1 && n < 80) {
        line[n] = ch;
        n = n + 1;
        ch = read_byte();
    }

    total = 0;
    for (pos = 0; pos < n; pos = pos + 1) {
        total = total + line[pos] * (pos + 1);
    }
    total = total % 9973;

    for (pos = 0; pos < n; pos = pos + 1) {
        coded[pos] = wrap_code(line[pos], (key + pos) % 95);
    }
    coded[n] = 0;

    print_str(coded);
    print_char('\n');
    print_int(total);
}
"#;

/// JB.team7, the real fault: the final `total = total % 9973;` statement
/// is missing — an *algorithm* defect (the correction adds code, changing
/// the instruction count, which no SWIFI tool can emulate). The output is
/// wrong only when the raw weighted sum reaches 9973, i.e. on the rarer
/// longer lines.
pub const JB_TEAM7_FAULTY: &str = r#"
// JB.team7 - string coder, helper-function implementation
int wrap_code(int x, int k) {
    int y;
    if (x < 32) { return x; }
    if (x > 126) { return x; }
    y = x + k;
    while (y > 126) {
        y = y - 95;
    }
    return y;
}

void main() {
    char line[81];
    char coded[81];
    int total;
    int n;
    int key;
    int pos;
    int ch;

    key = read_int();
    key = key % 95;

    n = 0;
    ch = read_byte();
    while (ch != '\n' && ch != -1 && n < 80) {
        line[n] = ch;
        n = n + 1;
        ch = read_byte();
    }

    total = 0;
    for (pos = 0; pos < n; pos = pos + 1) {
        total = total + line[pos] * (pos + 1);
    }

    for (pos = 0; pos < n; pos = pos + 1) {
        coded[pos] = wrap_code(line[pos], (key + pos) % 95);
    }
    coded[n] = 0;

    print_str(coded);
    print_char('\n');
    print_int(total);
}
"#;

/// JB.team11: a third design (no real fault; §6 target). Pointer-walk
/// style: reads and encodes through explicit pointers into heap buffers.
pub const JB_TEAM11: &str = r#"
// JB.team11 - string coder, pointer-walk implementation over heap buffers
int is_printable(int v) {
    if (v >= 32 && v <= 126) { return 1; }
    return 0;
}

void main() {
    char *src;
    char *dst;
    char *p;
    char *q;
    int count;
    int shift;
    int idx;
    int v;
    int sum;

    src = malloc(81);
    dst = malloc(81);

    shift = read_int();
    shift = shift % 95;

    count = 0;
    p = src;
    v = read_byte();
    while (v != '\n' && v != -1 && count < 80) {
        *p = v;
        p = p + 1;
        count = count + 1;
        v = read_byte();
    }
    *p = 0;

    sum = 0;
    idx = 0;
    p = src;
    while (idx < count) {
        sum = sum + *p * (idx + 1);
        p = p + 1;
        idx = idx + 1;
    }
    sum = sum % 9973;

    p = src;
    q = dst;
    idx = 0;
    while (idx < count) {
        v = *p;
        if (is_printable(v)) {
            *q = 32 + (v - 32 + shift + idx) % 95;
        } else {
            *q = v;
        }
        p = p + 1;
        q = q + 1;
        idx = idx + 1;
    }
    *q = 0;

    print_str(dst);
    print_char('\n');
    print_int(sum);

    free(src);
    free(dst);
}
"#;
