//! Random test-input generation and oracle wiring.
//!
//! The paper used "a test case composed by 300 input data sets randomly
//! generated … for all the programs of the same kind", so inputs are
//! generated per *family* and shared across that family's programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swifi_vm::machine::InputTape;

use crate::oracle;

/// The three program families of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// IOI-style chess gathering problem (C.team#).
    Camelot,
    /// String-coding problem (JB.team#).
    JamesB,
    /// Parallel Laplace solver (red-black over-relaxation).
    Sor,
}

/// A structured test input: can be rendered to an [`InputTape`] and knows
/// its correct output.
///
/// `Hash` + `Eq` allow run engines to memoize per-input derived data (the
/// oracle's expected output, notably) across the many runs that share an
/// input within a campaign.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TestInput {
    /// Piece positions, king first.
    Camelot {
        /// `(row, col)` per piece; index 0 is the king.
        pieces: Vec<(i32, i32)>,
    },
    /// Seed plus input line.
    JamesB {
        /// Non-negative coding seed.
        seed: i32,
        /// Line content (printable ASCII, no newline).
        line: Vec<u8>,
    },
    /// Grid size, iterations, and the four boundary values.
    Sor {
        /// Interior size (1..=24).
        n: i32,
        /// Relaxation iterations.
        iters: i32,
        /// Boundary values: top, bottom, left, right.
        boundary: [i32; 4],
    },
}

impl TestInput {
    /// The family this input belongs to.
    pub fn family(&self) -> Family {
        match self {
            TestInput::Camelot { .. } => Family::Camelot,
            TestInput::JamesB { .. } => Family::JamesB,
            TestInput::Sor { .. } => Family::Sor,
        }
    }

    /// Render to the VM input tape the programs read from.
    pub fn to_tape(&self) -> InputTape {
        let mut tape = InputTape::new();
        match self {
            TestInput::Camelot { pieces } => {
                tape.push_ints([pieces.len() as i32]);
                for &(r, c) in pieces {
                    tape.push_ints([r, c]);
                }
            }
            TestInput::JamesB { seed, line } => {
                tape.push_ints([*seed]);
                tape.push_bytes(line.iter().copied());
                tape.push_bytes([b'\n']);
            }
            TestInput::Sor { n, iters, boundary } => {
                tape.push_ints([*n, *iters]);
                tape.push_ints(boundary.iter().copied());
            }
        }
        tape
    }

    /// The correct program output for this input, per the oracle.
    pub fn expected_output(&self) -> Vec<u8> {
        match self {
            TestInput::Camelot { pieces } => oracle::camelot_solve(pieces).to_string().into_bytes(),
            TestInput::JamesB { seed, line } => oracle::jamesb_output(*seed, line),
            TestInput::Sor { n, iters, boundary } => oracle::sor_solve_full(
                *n as usize,
                *iters,
                boundary[0],
                boundary[1],
                boundary[2],
                boundary[3],
            )
            .to_output(),
        }
    }
}

impl Family {
    /// Short name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Camelot => "Camelot",
            Family::JamesB => "JamesB",
            Family::Sor => "SOR",
        }
    }

    /// Generate one random input for this family.
    ///
    /// Distributions are chosen so the planted real faults surface at
    /// rates in the bands of the paper's Table 1 (see EXPERIMENTS.md for
    /// the measured values):
    ///
    /// - Camelot: 1 king + 1..=6 knights, uniform positions (piece overlap
    ///   allowed, as in the original problem);
    /// - JamesB: short lines usually, with a deliberate thin tail at the
    ///   80-character buffer limit (the JB.team6 trigger);
    /// - SOR: moderate grids and iteration counts, uniform boundaries.
    pub fn gen_input(self, rng: &mut StdRng) -> TestInput {
        match self {
            Family::Camelot => {
                let knights = rng.gen_range(1..=6);
                let pieces = (0..=knights)
                    .map(|_| (rng.gen_range(0..8), rng.gen_range(0..8)))
                    .collect();
                TestInput::Camelot { pieces }
            }
            Family::JamesB => {
                let seed = rng.gen_range(0..10_000);
                // Mostly short lines; a 5 % band of medium lines (where
                // JB.team7's missing-modulo fault can surface) and a 0.1 %
                // tail at the exact 80-char buffer limit (the JB.team6
                // trigger).
                let r = rng.gen_range(0..1000);
                let len = if r == 0 {
                    oracle::JAMESB_MAX
                } else if r < 51 {
                    rng.gen_range(13..=16)
                } else {
                    rng.gen_range(1..=12)
                };
                let line = (0..len).map(|_| rng.gen_range(32u8..=126)).collect();
                TestInput::JamesB { seed, line }
            }
            Family::Sor => {
                let n = rng.gen_range(6..=16);
                let iters = rng.gen_range(4..=12);
                let boundary = [
                    rng.gen_range(0..=100_000),
                    rng.gen_range(0..=100_000),
                    rng.gen_range(0..=100_000),
                    rng.gen_range(0..=100_000),
                ];
                TestInput::Sor { n, iters, boundary }
            }
        }
    }

    /// Generate the shared test case for a family: `count` inputs from a
    /// deterministic seed (the paper's "300 input data sets randomly
    /// generated", used identically for every program of the family).
    pub fn test_case(self, count: usize, seed: u64) -> Vec<TestInput> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.gen_input(&mut rng)).collect()
    }

    /// A sensible per-run instruction budget for this family — the hang
    /// detection threshold. Chosen a comfortable multiple above the
    /// worst-case fault-free run (Camelot ≈ 10M on the recursive designs,
    /// SOR ≈ 1.2M at n=16, JamesB ≈ 10k) while keeping hang-runs cheap:
    /// in injection campaigns hangs burn the whole budget, so oversizing
    /// it dominates campaign wall-clock.
    pub fn run_budget(self) -> u64 {
        match self {
            Family::Camelot => 30_000_000,
            Family::JamesB => 400_000,
            Family::Sor => 8_000_000,
        }
    }

    /// Cores the family's programs expect.
    pub fn cores(self) -> usize {
        match self {
            Family::Sor => 4,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_case_is_deterministic() {
        for fam in [Family::Camelot, Family::JamesB, Family::Sor] {
            assert_eq!(fam.test_case(10, 42), fam.test_case(10, 42));
        }
    }

    #[test]
    fn camelot_inputs_in_range() {
        for input in Family::Camelot.test_case(200, 1) {
            match input {
                TestInput::Camelot { pieces } => {
                    assert!((2..=7).contains(&pieces.len()));
                    for (r, c) in pieces {
                        assert!((0..8).contains(&r) && (0..8).contains(&c));
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn jamesb_hits_the_boundary_length_rarely() {
        let inputs = Family::JamesB.test_case(20_000, 2);
        let at_limit = inputs
            .iter()
            .filter(|i| matches!(i, TestInput::JamesB { line, .. } if line.len() == 80))
            .count();
        assert!(at_limit >= 1, "the 80-char tail must be reachable");
        assert!(at_limit < 100, "but rare (got {at_limit}/20000)");
    }

    #[test]
    fn tape_round_trip_shape() {
        let input = TestInput::Camelot {
            pieces: vec![(1, 2), (3, 4)],
        };
        let tape = input.to_tape();
        // 1 count + 2 pairs of ints.
        let mut expect = InputTape::new();
        expect.push_ints([2, 1, 2, 3, 4]);
        assert_eq!(tape, expect);
    }

    #[test]
    fn expected_output_matches_oracle() {
        let input = TestInput::JamesB {
            seed: 0,
            line: b"AAA".to_vec(),
        };
        // checksum = 65·1 + 65·2 + 65·3 = 390
        assert_eq!(input.expected_output(), b"ABC\n390".to_vec());
    }
}
