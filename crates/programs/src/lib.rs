//! # swifi-programs — the reproduction's target programs
//!
//! The paper (§4.2, Table 2) drew its targets from two sources: many
//! independently written contest solutions of two IOI-style problems
//! (*Camelot* and *JamesB*) and one "real life" parallel program (*SOR*).
//! Since the original 1998 contest submissions are unobtainable, this
//! crate re-creates the setting: independently *designed* MiniC
//! implementations of the same specifications, spanning the same diversity
//! axes the paper calls out (recursive vs. iterative, dynamic structures,
//! code size, parallelism), with the §5 real faults planted as one-token
//! or one-statement source changes.
//!
//! Every program reads from the VM input tape and prints a deterministic
//! result; [`input::TestInput`] generates random inputs per family and
//! knows the correct output via the independent Rust oracles in
//! [`oracle`].

#![warn(missing_docs)]

pub mod camelot;
pub mod input;
pub mod jamesb;
pub mod oracle;
pub mod sor;

use swifi_odc::DefectType;

pub use input::{Family, TestInput};

/// Description of one planted real software fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealFault {
    /// ODC classification of the defect.
    pub defect_type: DefectType,
    /// What the fault is, in the paper's terms.
    pub description: &'static str,
}

/// One target program of the study.
#[derive(Debug, Clone, Copy)]
pub struct TargetProgram {
    /// Paper-style name (`C.team1`, `JB.team6`, `SOR`).
    pub name: &'static str,
    /// Program family (shared input generator / oracle).
    pub family: Family,
    /// Table 2 feature description.
    pub features: &'static str,
    /// Corrected MiniC source.
    pub source_correct: &'static str,
    /// Source with the planted real fault, if this program has one.
    pub source_faulty: Option<&'static str>,
    /// The real fault's classification.
    pub real_fault: Option<RealFault>,
    /// Whether the program is a §6 class-campaign target (Table 2).
    pub section6_target: bool,
}

/// The complete program roster.
///
/// §5 (real-fault emulation) uses the seven programs with
/// `source_faulty`; §6 (class campaigns) uses the eight
/// `section6_target` programs — the paper's Table 2 row set.
pub fn all_programs() -> Vec<TargetProgram> {
    vec![
        TargetProgram {
            name: "C.team1",
            family: Family::Camelot,
            features: "Recursive algorithm, 1 real fault (corrected)",
            source_correct: camelot::C_TEAM1_CORRECT,
            source_faulty: Some(camelot::C_TEAM1_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Checking,
                description: "gather loop bound skips the last board rows (Fig. 5 shape)",
            }),
            section6_target: true,
        },
        TargetProgram {
            name: "C.team2",
            family: Family::Camelot,
            features: "Non-recursive algorithm, helper decomposition",
            source_correct: camelot::C_TEAM2_CORRECT,
            source_faulty: Some(camelot::C_TEAM2_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Algorithm,
                description: "carrier loop missing: only the first knight is ever a carrier",
            }),
            section6_target: true,
        },
        TargetProgram {
            name: "C.team3",
            family: Family::Camelot,
            features: "Non-recursive, relaxation sweeps",
            source_correct: camelot::C_TEAM3_CORRECT,
            source_faulty: Some(camelot::C_TEAM3_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Algorithm,
                description: "fixed sweep count instead of iterate-until-stable",
            }),
            section6_target: false,
        },
        TargetProgram {
            name: "C.team4",
            family: Family::Camelot,
            features: "Non-recursive, frontier-swap BFS",
            source_correct: camelot::C_TEAM4_CORRECT,
            source_faulty: Some(camelot::C_TEAM4_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Assignment,
                description: "carrier loop init off by one (`k = 2` for `k = 1`; Fig. 3 shape)",
            }),
            section6_target: false,
        },
        TargetProgram {
            name: "C.team5",
            family: Family::Camelot,
            features: "Non-recursive, Figure-6 distance helper",
            source_correct: camelot::C_TEAM5_CORRECT,
            source_faulty: Some(camelot::C_TEAM5_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Algorithm,
                description: "meeting-square king distance is sum of axes instead of max (Fig. 6)",
            }),
            section6_target: false,
        },
        TargetProgram {
            name: "C.team8",
            family: Family::Camelot,
            features: "Non-recursive algorithm, while-loop style",
            source_correct: camelot::C_TEAM8,
            source_faulty: None,
            real_fault: None,
            section6_target: true,
        },
        TargetProgram {
            name: "C.team9",
            family: Family::Camelot,
            features: "Non-recursive, many dynamic structures (heap lists/tables)",
            source_correct: camelot::C_TEAM9,
            source_faulty: None,
            real_fault: None,
            section6_target: true,
        },
        TargetProgram {
            name: "C.team10",
            family: Family::Camelot,
            features: "Recursive algorithm (distances and search)",
            source_correct: camelot::C_TEAM10,
            source_faulty: None,
            real_fault: None,
            section6_target: true,
        },
        TargetProgram {
            name: "JB.team6",
            family: Family::JamesB,
            features: "Non-recursive, 1 real fault (corrected), about 100 lines",
            source_correct: jamesb::JB_TEAM6_CORRECT,
            source_faulty: Some(jamesb::JB_TEAM6_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Assignment,
                description: "buffers one byte short ([80] for [81]); stack shift (Fig. 4)",
            }),
            section6_target: true,
        },
        TargetProgram {
            name: "JB.team7",
            family: Family::JamesB,
            features: "Non-recursive, helper functions, about 100 lines",
            source_correct: jamesb::JB_TEAM7_CORRECT,
            source_faulty: Some(jamesb::JB_TEAM7_FAULTY),
            real_fault: Some(RealFault {
                defect_type: DefectType::Algorithm,
                description: "final checksum modulo statement missing",
            }),
            section6_target: false,
        },
        TargetProgram {
            name: "JB.team11",
            family: Family::JamesB,
            features: "Non-recursive (different design from JB.team6), pointer walk",
            source_correct: jamesb::JB_TEAM11,
            source_faulty: None,
            real_fault: None,
            section6_target: true,
        },
        TargetProgram {
            name: "SOR",
            family: Family::Sor,
            features: "Parallel program, real-life style, largest size",
            source_correct: sor::SOR,
            source_faulty: None,
            real_fault: None,
            section6_target: true,
        },
    ]
}

/// Look a program up by its paper name.
pub fn program(name: &str) -> Option<TargetProgram> {
    all_programs().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swifi_lang::compile;
    use swifi_vm::machine::{Machine, MachineConfig, RunOutcome};
    use swifi_vm::Noop;

    fn run_program(src: &str, family: Family, input: &TestInput) -> RunOutcome {
        let p = compile(src).unwrap_or_else(|e| panic!("compile error: {e}"));
        let mut m = Machine::new(MachineConfig {
            num_cores: family.cores(),
            budget: family.run_budget(),
            ..MachineConfig::default()
        });
        m.load(&p.image);
        m.set_input(input.to_tape());
        m.run(&mut Noop)
    }

    #[test]
    fn roster_shape_matches_paper() {
        let all = all_programs();
        assert_eq!(all.len(), 12);
        // Seven §5 real faults.
        assert_eq!(all.iter().filter(|p| p.source_faulty.is_some()).count(), 7);
        // Eight §6 Table-2 targets.
        assert_eq!(all.iter().filter(|p| p.section6_target).count(), 8);
        // Fault classes: 2 assignment, 1 checking, 4 algorithm.
        let count = |t: DefectType| {
            all.iter()
                .filter(|p| p.real_fault.is_some_and(|f| f.defect_type == t))
                .count()
        };
        assert_eq!(count(DefectType::Assignment), 2);
        assert_eq!(count(DefectType::Checking), 1);
        assert_eq!(count(DefectType::Algorithm), 4);
    }

    #[test]
    fn every_source_compiles() {
        for p in all_programs() {
            compile(p.source_correct)
                .unwrap_or_else(|e| panic!("{} corrected does not compile: {e}", p.name));
            if let Some(f) = p.source_faulty {
                compile(f).unwrap_or_else(|e| panic!("{} faulty does not compile: {e}", p.name));
            }
        }
    }

    /// Every corrected program must agree with the oracle on a batch of
    /// random inputs — the core validity requirement of the whole study.
    #[test]
    fn corrected_programs_match_oracle() {
        let mut rng = StdRng::seed_from_u64(777);
        for p in all_programs() {
            let runs = match p.family {
                Family::Camelot => 12,
                Family::JamesB => 40,
                Family::Sor => 8,
            };
            for i in 0..runs {
                let input = p.family.gen_input(&mut rng);
                let out = run_program(p.source_correct, p.family, &input);
                match &out {
                    RunOutcome::Completed {
                        exit_code: 0,
                        output,
                    } => {
                        assert_eq!(
                            output,
                            &input.expected_output(),
                            "{} run {i} disagrees with oracle on {input:?}",
                            p.name
                        );
                    }
                    other => panic!("{} run {i} abnormal: {other:?} on {input:?}", p.name, i = i),
                }
            }
        }
    }

    /// Every faulty program must terminate normally on random inputs (the
    /// paper observed no hangs or crashes from the real faults — Table 1).
    #[test]
    fn faulty_programs_never_crash_or_hang() {
        for p in all_programs() {
            let Some(faulty) = p.source_faulty else {
                continue;
            };
            let mut rng = StdRng::seed_from_u64(1234);
            for _ in 0..40 {
                let input = p.family.gen_input(&mut rng);
                match run_program(faulty, p.family, &input) {
                    RunOutcome::Completed { exit_code: 0, .. } => {}
                    other => panic!("{} faulty crashed/hung: {other:?}", p.name),
                }
            }
        }
    }

    /// Rust-side models of the Camelot faults, used to *search* for
    /// fault-exposing inputs quickly, which are then confirmed on the VM.
    mod fault_models {
        use crate::oracle::{king_dist, knight_distances, BOARD};

        /// Parameterised Camelot solver modelling the planted faults:
        /// carriers considered are the knights numbered
        /// `carrier_from ..= carrier_to` (team4's fault starts at 2,
        /// team2's fault stops at 1), `manhattan_meet` inflates the king
        /// distance used for *meeting squares only* (team5's fault),
        /// `g_limit` bounds the gather loop (team1's fault: 48), and `kd`
        /// is the knight-distance table (team3's fault supplies
        /// under-propagated sweeps).
        #[allow(clippy::too_many_arguments)]
        pub fn solve(
            pieces: &[(i32, i32)],
            kd: &[Vec<i32>],
            carrier_from: usize,
            carrier_to: usize,
            manhattan_meet: bool,
            g_limit: usize,
        ) -> i32 {
            let idx = |(r, c): (i32, i32)| (r as usize) * BOARD + c as usize;
            let meet = |a: usize, b: usize| {
                if manhattan_meet {
                    let (ar, ac) = ((a / 8) as i32, (a % 8) as i32);
                    let (br, bc) = ((b / 8) as i32, (b % 8) as i32);
                    (ar - br).abs() + (ac - bc).abs()
                } else {
                    king_dist(a, b)
                }
            };
            let king = idx(pieces[0]);
            let knights: Vec<usize> = pieces[1..].iter().map(|&p| idx(p)).collect();
            let mut best = i32::MAX;
            for g in 0..g_limit {
                let base: i32 = knights.iter().map(|&p| kd[p][g]).sum();
                let mut extra = king_dist(king, g);
                for (ki, &p) in knights.iter().enumerate() {
                    let num = ki + 1;
                    if num < carrier_from || num > carrier_to {
                        continue;
                    }
                    for m in 0..64 {
                        let e = kd[p][m] + meet(king, m) + kd[m][g] - kd[p][g];
                        extra = extra.min(e);
                    }
                }
                best = best.min(base + extra);
            }
            best
        }

        /// team3's faulty distance table: exactly three relaxation sweeps
        /// in the MiniC program's hop order and scan order.
        pub fn sweep_distances(passes: usize) -> Vec<Vec<i32>> {
            const HOP_R: [i32; 8] = [1, 2, -1, -2, 1, 2, -1, -2];
            const HOP_C: [i32; 8] = [2, 1, 2, 1, -2, -1, -2, -1];
            let n = 64;
            let mut wd = vec![vec![99i32; n]; n];
            // Indexing is clearer than iterators here: `s` names both the
            // working row and the source square.
            #[allow(clippy::needless_range_loop)]
            for s in 0..n {
                wd[s][s] = 0;
                for _ in 0..passes {
                    for cur in 0..n {
                        if wd[s][cur] < 90 {
                            let (rr, cc) = ((cur / 8) as i32, (cur % 8) as i32);
                            for k in 0..8 {
                                let (nr, nc) = (rr + HOP_R[k], cc + HOP_C[k]);
                                if (0..8).contains(&nr) && (0..8).contains(&nc) {
                                    let t = (nr * 8 + nc) as usize;
                                    let cand = wd[s][cur] + 1;
                                    if cand < wd[s][t] {
                                        wd[s][t] = cand;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            wd
        }

        /// Reference solve (all options correct).
        pub fn reference(pieces: &[(i32, i32)]) -> i32 {
            solve(pieces, &knight_distances(), 1, usize::MAX, false, 64)
        }
    }

    /// Search random family inputs until the fault model disagrees with
    /// the oracle, then confirm both behaviours on the VM.
    fn confirm_camelot_fault(name: &str, model: impl Fn(&[(i32, i32)]) -> i32) {
        let p = program(name).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut found = None;
        for _ in 0..100_000 {
            let input = Family::Camelot.gen_input(&mut rng);
            let TestInput::Camelot { pieces } = &input else {
                unreachable!()
            };
            let truth = fault_models::reference(pieces);
            let faulty_prediction = model(pieces);
            assert_eq!(
                truth,
                oracle::camelot_solve(pieces),
                "internal: fault-model reference drifted from the oracle"
            );
            if faulty_prediction != truth {
                found = Some((input, truth, faulty_prediction));
                break;
            }
        }
        let (input, truth, prediction) =
            found.unwrap_or_else(|| panic!("{name}: no fault-exposing input in 100k candidates"));
        let correct_out = run_program(p.source_correct, Family::Camelot, &input);
        assert_eq!(
            correct_out.output(),
            truth.to_string().as_bytes(),
            "{name} corrected build wrong on {input:?}"
        );
        let faulty_out = run_program(p.source_faulty.unwrap(), Family::Camelot, &input);
        assert_eq!(
            faulty_out.output(),
            prediction.to_string().as_bytes(),
            "{name} faulty build does not match its fault model on {input:?}"
        );
    }

    #[test]
    fn team1_fault_skips_last_rows() {
        confirm_camelot_fault("C.team1", |pieces| {
            fault_models::solve(
                pieces,
                &oracle::knight_distances(),
                1,
                usize::MAX,
                false,
                48,
            )
        });
    }

    #[test]
    fn team2_fault_only_first_knight_carries() {
        confirm_camelot_fault("C.team2", |pieces| {
            fault_models::solve(pieces, &oracle::knight_distances(), 1, 1, false, 64)
        });
    }

    #[test]
    fn team3_fault_underpropagates_distances() {
        let sweeps = fault_models::sweep_distances(3);
        confirm_camelot_fault("C.team3", move |pieces| {
            fault_models::solve(pieces, &sweeps, 1, usize::MAX, false, 64)
        });
    }

    #[test]
    fn team4_fault_ignores_first_knight() {
        confirm_camelot_fault("C.team4", |pieces| {
            fault_models::solve(
                pieces,
                &oracle::knight_distances(),
                2,
                usize::MAX,
                false,
                64,
            )
        });
    }

    #[test]
    fn team5_fault_uses_manhattan_meeting_distance() {
        confirm_camelot_fault("C.team5", |pieces| {
            fault_models::solve(pieces, &oracle::knight_distances(), 1, usize::MAX, true, 64)
        });
    }

    #[test]
    fn jb_team7_fault_skips_final_modulo() {
        // 16 tildes: weighted sum = 126 · 136 = 17136 ≥ 9973.
        let input = TestInput::JamesB {
            seed: 3,
            line: vec![b'~'; 16],
        };
        let p = program("JB.team7").unwrap();
        let c = run_program(p.source_correct, Family::JamesB, &input);
        assert_eq!(c.output(), input.expected_output());
        let f = run_program(p.source_faulty.unwrap(), Family::JamesB, &input);
        let expected_wrong: Vec<u8> = {
            let (coded, _) = oracle::jamesb_encode(3, &[b'~'; 16]);
            let mut o = coded;
            o.push(b'\n');
            o.extend(b"17136".iter());
            o
        };
        assert_eq!(f.output(), expected_wrong);
    }

    #[test]
    fn jb_team6_fault_fires_exactly_at_80_chars() {
        let p = program("JB.team6").unwrap();
        let boundary = TestInput::JamesB {
            seed: 17,
            line: vec![b'q'; 80],
        };
        let shorter = TestInput::JamesB {
            seed: 17,
            line: vec![b'q'; 79],
        };
        let faulty = p.source_faulty.unwrap();
        // 79 chars: faulty build is still correct.
        match run_program(faulty, Family::JamesB, &shorter) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output, shorter.expected_output());
            }
            other => panic!("{other:?}"),
        }
        // 80 chars: the terminator overwrites the checksum's low byte.
        match run_program(faulty, Family::JamesB, &boundary) {
            RunOutcome::Completed { output, .. } => {
                assert_ne!(output, boundary.expected_output());
            }
            other => panic!("{other:?}"),
        }
        // The corrected build handles the boundary fine.
        match run_program(p.source_correct, Family::JamesB, &boundary) {
            RunOutcome::Completed { output, .. } => {
                assert_eq!(output, boundary.expected_output());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn team1_fault_misses_last_row_gather() {
        // All pieces clustered at (7, 4): optimum is square 60, which the
        // faulty gather loop (bounded at 56) skips.
        let input = TestInput::Camelot {
            pieces: vec![(7, 4), (7, 4), (7, 4)],
        };
        let p = program("C.team1").unwrap();
        let correct_out = run_program(p.source_correct, Family::Camelot, &input);
        assert_eq!(correct_out.output(), b"0");
        let faulty_out = run_program(p.source_faulty.unwrap(), Family::Camelot, &input);
        assert_ne!(faulty_out.output(), b"0");
    }

    #[test]
    fn vendored_sources_survive_pretty_round_trip() {
        use swifi_lang::parser::parse;
        use swifi_lang::pretty::print_program;
        for p in all_programs() {
            for (label, src) in [
                ("correct", Some(p.source_correct)),
                ("faulty", p.source_faulty),
            ] {
                let Some(src) = src else { continue };
                let printed = print_program(&parse(src).unwrap());
                let reprinted = print_program(&parse(&printed).unwrap());
                assert_eq!(printed, reprinted, "{} {label} not a fixpoint", p.name);
            }
        }
    }

    #[test]
    fn metrics_reflect_table2_features() {
        use swifi_lang::parser::parse;
        let feature = |name: &str| {
            let p = program(name).unwrap();
            let ast = parse(p.source_correct).unwrap();
            swifi_metrics_probe(p.source_correct, &ast)
        };
        let (t1_rec, _t1_dyn, _) = feature("C.team1");
        assert!(t1_rec, "C.team1 is recursive");
        let (t9_rec, t9_dyn, _) = feature("C.team9");
        assert!(!t9_rec && t9_dyn, "C.team9 uses dynamic structures");
        let (_, _, sor_loc) = feature("SOR");
        let (_, _, jb_loc) = feature("JB.team6");
        assert!(sor_loc > jb_loc, "SOR is the largest program");
    }

    // Minimal local re-implementation to avoid a dev-dependency cycle
    // with swifi-metrics (which depends on swifi-lang only).
    fn swifi_metrics_probe(src: &str, ast: &swifi_lang::ast::Program) -> (bool, bool, usize) {
        use swifi_lang::ast::{visit_exprs, ExprKind};
        let mut recursive = false;
        let mut dynamic = false;
        for f in &ast.functions {
            visit_exprs(&f.body, &mut |e| {
                if let ExprKind::Call { name, .. } = &e.kind {
                    if name == &f.name {
                        recursive = true;
                    }
                    if name == "malloc" || name == "free" {
                        dynamic = true;
                    }
                }
            });
        }
        let loc = src.lines().filter(|l| !l.trim().is_empty()).count();
        (recursive, dynamic, loc)
    }
}
