//! The Camelot program family: eight independently designed MiniC
//! implementations of the gathering problem (paper §4.2), five of them
//! with the real software faults analysed in the paper's §5.
//!
//! Problem: an 8×8 board holds one king and up to six knights. Compute the
//! minimum total number of moves to gather every piece on one square. A
//! knight may meet the king on a square and carry it from there at no
//! extra cost for the king.
//!
//! The designs deliberately differ in control and data structures — the
//! diversity axis the paper exploits: recursion (team1, team10), iterative
//! BFS with array queues (team2, team5, team8), frontier-swap BFS (team4),
//! relaxation sweeps (team3), and heap-allocated linked structures
//! (team9).

// The two team1 variants share everything except the gather-loop bound,
// so the bodies live in macros to keep the fault a one-token change.
macro_rules! CAMELOT_TEAM1_PREFIX {
    () => {
        r#"
// C.team1 - Camelot, recursive distance exploration
int kd[64][64];
int px[8];
int py[8];
int ps[8];
int n;
int drow[8];
int dcol[8];

void setup_moves() {
    drow[0] = 1;  dcol[0] = 2;
    drow[1] = 1;  dcol[1] = -2;
    drow[2] = -1; dcol[2] = 2;
    drow[3] = -1; dcol[3] = -2;
    drow[4] = 2;  dcol[4] = 1;
    drow[5] = 2;  dcol[5] = -1;
    drow[6] = -2; dcol[6] = 1;
    drow[7] = -2; dcol[7] = -1;
}

void explore(int src, int r, int c, int d) {
    int k;
    int nr;
    int nc;
    if (d >= kd[src][r * 8 + c]) {
        return;
    }
    kd[src][r * 8 + c] = d;
    for (k = 0; k < 8; k = k + 1) {
        nr = r + drow[k];
        nc = c + dcol[k];
        if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
            explore(src, nr, nc, d + 1);
        }
    }
}

int cheb(int a, int b) {
    int ar;
    int ac;
    int br;
    int bc;
    int dr;
    int dc;
    ar = a / 8;
    ac = a % 8;
    br = b / 8;
    bc = b % 8;
    dr = ar - br;
    if (dr < 0) { dr = -dr; }
    dc = ac - bc;
    if (dc < 0) { dc = -dc; }
    if (dr > dc) { return dr; }
    return dc;
}

void main() {
    int i;
    int g;
    int m;
    int k;
    int base;
    int extra;
    int e;
    int best;
    int src;

    setup_moves();
    n = read_int();
    for (i = 0; i < n; i = i + 1) {
        px[i] = read_int();
        py[i] = read_int();
        ps[i] = px[i] * 8 + py[i];
    }

    for (src = 0; src < 64; src = src + 1) {
        for (g = 0; g < 64; g = g + 1) { kd[src][g] = 7; }
        explore(src, src / 8, src % 8, 0);
    }

    best = 1000000;
"#
    };
}

macro_rules! CAMELOT_TEAM1_SUFFIX {
    () => {
        r#"        base = 0;
        for (i = 1; i < n; i = i + 1) { base = base + kd[ps[i]][g]; }
        extra = cheb(ps[0], g);
        for (k = 1; k < n; k = k + 1) {
            for (m = 0; m < 64; m = m + 1) {
                e = kd[ps[k]][m] + cheb(ps[0], m) + kd[m][g] - kd[ps[k]][g];
                if (e < extra) { extra = e; }
            }
        }
        if (base + extra < best) { best = base + extra; }
    }
    print_int(best);
}
"#
    };
}

/// C.team1, corrected: recursive knight-distance exploration.
pub const C_TEAM1_CORRECT: &str = concat!(
    CAMELOT_TEAM1_PREFIX!(),
    "    for (g = 0; g < 64; g = g + 1) {\n",
    CAMELOT_TEAM1_SUFFIX!()
);

/// C.team1, the real fault: the gather loop's bound is wrong (`g < 48`
/// where `g < 64` is required — a 6-rows-for-8 slip), silently skipping
/// the last two board rows — a *checking* defect (ODC: "incorrect loop or
/// conditional statements"), wrong only when every optimal gather square
/// lies in rows 6–7. At machine level a single `cmpi` immediate differs
/// (Figure 5 shape: one-word checking mutation).
pub const C_TEAM1_FAULTY: &str = concat!(
    CAMELOT_TEAM1_PREFIX!(),
    "    for (g = 0; g < 48; g = g + 1) {\n",
    CAMELOT_TEAM1_SUFFIX!()
);

/// C.team2, corrected: iterative BFS with an array queue, helper-function
/// decomposition, and an iterative king walk.
pub const C_TEAM2_CORRECT: &str = r#"
// C.team2 - Camelot, iterative BFS, helper decomposition
int dist[64][64];
int queue[64];
int qhead;
int qtail;
int sq[8];
int count;
int jump_r[8];
int jump_c[8];

void moves_init() {
    jump_r[0] = 2;  jump_c[0] = 1;
    jump_r[1] = 2;  jump_c[1] = -1;
    jump_r[2] = -2; jump_c[2] = 1;
    jump_r[3] = -2; jump_c[3] = -1;
    jump_r[4] = 1;  jump_c[4] = 2;
    jump_r[5] = 1;  jump_c[5] = -2;
    jump_r[6] = -1; jump_c[6] = 2;
    jump_r[7] = -1; jump_c[7] = -2;
}

void bfs(int start) {
    int cur;
    int k;
    int rr;
    int cc;
    int nr;
    int nc;
    int j;
    for (j = 0; j < 64; j = j + 1) { dist[start][j] = -1; }
    qhead = 0;
    qtail = 0;
    queue[qtail] = start;
    qtail = qtail + 1;
    dist[start][start] = 0;
    while (qhead < qtail) {
        cur = queue[qhead];
        qhead = qhead + 1;
        rr = cur / 8;
        cc = cur % 8;
        for (k = 0; k < 8; k = k + 1) {
            nr = rr + jump_r[k];
            nc = cc + jump_c[k];
            if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
                if (dist[start][nr * 8 + nc] == -1) {
                    dist[start][nr * 8 + nc] = dist[start][cur] + 1;
                    queue[qtail] = nr * 8 + nc;
                    qtail = qtail + 1;
                }
            }
        }
    }
}

int king_steps(int from, int to) {
    int r1;
    int c1;
    int r2;
    int c2;
    int steps;
    r1 = from / 8;
    c1 = from % 8;
    r2 = to / 8;
    c2 = to % 8;
    steps = 0;
    while (r1 != r2 || c1 != c2) {
        if (r1 < r2) { r1 = r1 + 1; }
        else if (r1 > r2) { r1 = r1 - 1; }
        if (c1 < c2) { c1 = c1 + 1; }
        else if (c1 > c2) { c1 = c1 - 1; }
        steps = steps + 1;
    }
    return steps;
}

int pickup_gain(int knight, int g) {
    int m;
    int bestm;
    int e;
    bestm = 1000000;
    for (m = 0; m < 64; m = m + 1) {
        e = dist[sq[knight]][m] + king_steps(sq[0], m) + dist[m][g] - dist[sq[knight]][g];
        if (e < bestm) { bestm = e; }
    }
    return bestm;
}

void main() {
    int i;
    int g;
    int k;
    int base;
    int extra;
    int e;
    int answer;
    int r;
    int c;

    moves_init();
    count = read_int();
    for (i = 0; i < count; i = i + 1) {
        r = read_int();
        c = read_int();
        sq[i] = r * 8 + c;
    }
    for (i = 0; i < 64; i = i + 1) { bfs(i); }

    answer = 1000000;
    for (g = 0; g < 64; g = g + 1) {
        base = 0;
        for (i = 1; i < count; i = i + 1) { base = base + dist[sq[i]][g]; }
        extra = king_steps(sq[0], g);
        for (k = 1; k < count; k = k + 1) {
            e = pickup_gain(k, g);
            if (e < extra) { extra = e; }
        }
        if (base + extra < answer) { answer = base + extra; }
    }
    print_int(answer);
}
"#;

/// C.team2, the real fault: only the *first* knight is ever considered as
/// the king's carrier — the loop over candidate carriers is missing. An
/// *algorithm* defect: the correction replaces the single `if` with a
/// loop over all knights, restructuring the code.
pub const C_TEAM2_FAULTY: &str = r#"
// C.team2 - Camelot, iterative BFS, helper decomposition
int dist[64][64];
int queue[64];
int qhead;
int qtail;
int sq[8];
int count;
int jump_r[8];
int jump_c[8];

void moves_init() {
    jump_r[0] = 2;  jump_c[0] = 1;
    jump_r[1] = 2;  jump_c[1] = -1;
    jump_r[2] = -2; jump_c[2] = 1;
    jump_r[3] = -2; jump_c[3] = -1;
    jump_r[4] = 1;  jump_c[4] = 2;
    jump_r[5] = 1;  jump_c[5] = -2;
    jump_r[6] = -1; jump_c[6] = 2;
    jump_r[7] = -1; jump_c[7] = -2;
}

void bfs(int start) {
    int cur;
    int k;
    int rr;
    int cc;
    int nr;
    int nc;
    int j;
    for (j = 0; j < 64; j = j + 1) { dist[start][j] = -1; }
    qhead = 0;
    qtail = 0;
    queue[qtail] = start;
    qtail = qtail + 1;
    dist[start][start] = 0;
    while (qhead < qtail) {
        cur = queue[qhead];
        qhead = qhead + 1;
        rr = cur / 8;
        cc = cur % 8;
        for (k = 0; k < 8; k = k + 1) {
            nr = rr + jump_r[k];
            nc = cc + jump_c[k];
            if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
                if (dist[start][nr * 8 + nc] == -1) {
                    dist[start][nr * 8 + nc] = dist[start][cur] + 1;
                    queue[qtail] = nr * 8 + nc;
                    qtail = qtail + 1;
                }
            }
        }
    }
}

int king_steps(int from, int to) {
    int r1;
    int c1;
    int r2;
    int c2;
    int steps;
    r1 = from / 8;
    c1 = from % 8;
    r2 = to / 8;
    c2 = to % 8;
    steps = 0;
    while (r1 != r2 || c1 != c2) {
        if (r1 < r2) { r1 = r1 + 1; }
        else if (r1 > r2) { r1 = r1 - 1; }
        if (c1 < c2) { c1 = c1 + 1; }
        else if (c1 > c2) { c1 = c1 - 1; }
        steps = steps + 1;
    }
    return steps;
}

int pickup_gain(int knight, int g) {
    int m;
    int bestm;
    int e;
    bestm = 1000000;
    for (m = 0; m < 64; m = m + 1) {
        e = dist[sq[knight]][m] + king_steps(sq[0], m) + dist[m][g] - dist[sq[knight]][g];
        if (e < bestm) { bestm = e; }
    }
    return bestm;
}

void main() {
    int i;
    int g;
    int base;
    int extra;
    int e;
    int answer;
    int r;
    int c;

    moves_init();
    count = read_int();
    for (i = 0; i < count; i = i + 1) {
        r = read_int();
        c = read_int();
        sq[i] = r * 8 + c;
    }
    for (i = 0; i < 64; i = i + 1) { bfs(i); }

    answer = 1000000;
    for (g = 0; g < 64; g = g + 1) {
        base = 0;
        for (i = 1; i < count; i = i + 1) { base = base + dist[sq[i]][g]; }
        extra = king_steps(sq[0], g);
        if (count > 1) {
            e = pickup_gain(1, g);
            if (e < extra) { extra = e; }
        }
        if (base + extra < answer) { answer = base + extra; }
    }
    print_int(answer);
}
"#;

macro_rules! CAMELOT_TEAM3_PREFIX {
    () => {
        r#"
// C.team3 - Camelot, distance computation by relaxation sweeps
int wd[64][64];
int spots[8];
int total;
int hop_r[8];
int hop_c[8];

void hops_init() {
    hop_r[0] = 1;  hop_c[0] = 2;
    hop_r[1] = 2;  hop_c[1] = 1;
    hop_r[2] = -1; hop_c[2] = 2;
    hop_r[3] = -2; hop_c[3] = 1;
    hop_r[4] = 1;  hop_c[4] = -2;
    hop_r[5] = 2;  hop_c[5] = -1;
    hop_r[6] = -1; hop_c[6] = -2;
    hop_r[7] = -2; hop_c[7] = -1;
}

int relax_pass(int s, int changed) {
    int cur;
    int k;
    int rr;
    int cc;
    int nr;
    int nc;
    int cand;
    for (cur = 0; cur < 64; cur = cur + 1) {
        if (wd[s][cur] < 90) {
            rr = cur / 8;
            cc = cur % 8;
            for (k = 0; k < 8; k = k + 1) {
                nr = rr + hop_r[k];
                nc = cc + hop_c[k];
                if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
                    cand = wd[s][cur] + 1;
                    if (cand < wd[s][nr * 8 + nc]) {
                        wd[s][nr * 8 + nc] = cand;
                        changed = 1;
                    }
                }
            }
        }
    }
    return changed;
}

"#
    };
}

macro_rules! CAMELOT_TEAM3_SUFFIX {
    () => {
        r#"
int walk(int a, int b) {
    int d1;
    int d2;
    d1 = a / 8 - b / 8;
    if (d1 < 0) { d1 = -d1; }
    d2 = a % 8 - b % 8;
    if (d2 < 0) { d2 = -d2; }
    if (d1 > d2) { return d1; }
    return d2;
}

void main() {
    int i;
    int g;
    int m;
    int k;
    int acc;
    int carry;
    int e;
    int best;
    int s;

    hops_init();
    total = read_int();
    for (i = 0; i < total; i = i + 1) {
        g = read_int();
        m = read_int();
        spots[i] = g * 8 + m;
    }

    for (s = 0; s < 64; s = s + 1) {
        for (g = 0; g < 64; g = g + 1) { wd[s][g] = 99; }
        wd[s][s] = 0;
        relax_all(s);
    }

    best = 1000000;
    for (g = 0; g < 64; g = g + 1) {
        acc = 0;
        for (i = 1; i < total; i = i + 1) { acc = acc + wd[spots[i]][g]; }
        carry = walk(spots[0], g);
        for (k = 1; k < total; k = k + 1) {
            for (m = 0; m < 64; m = m + 1) {
                e = wd[spots[k]][m] + walk(spots[0], m) + wd[m][g] - wd[spots[k]][g];
                if (e < carry) { carry = e; }
            }
        }
        if (acc + carry < best) { best = acc + carry; }
    }
    print_int(best);
}
"#
    };
}

/// C.team3, corrected: knight distances by relaxation sweeps repeated
/// *until stable*.
pub const C_TEAM3_CORRECT: &str = concat!(
    CAMELOT_TEAM3_PREFIX!(),
    r#"void relax_all(int s) {
    int changed;
    changed = 1;
    while (changed) {
        changed = 0;
        changed = relax_pass(s, changed);
    }
}
"#,
    CAMELOT_TEAM3_SUFFIX!()
);

/// C.team3, the real fault: the relaxation runs a *fixed number of
/// sweeps* instead of iterating until stable — an *algorithm* defect
/// (`for` over a constant vs `while (changed)`), wrong only for the rare
/// inputs whose shortest knight paths need more propagation than the
/// fixed sweeps provide.
pub const C_TEAM3_FAULTY: &str = concat!(
    CAMELOT_TEAM3_PREFIX!(),
    r#"void relax_all(int s) {
    int pass;
    for (pass = 0; pass < 3; pass = pass + 1) {
        relax_pass(s, 0);
    }
}
"#,
    CAMELOT_TEAM3_SUFFIX!()
);

macro_rules! CAMELOT_TEAM4_PREFIX {
    () => {
        r#"
// C.team4 - Camelot, frontier-swap BFS
int steps[64][64];
int pos[8];
int np;
int leap_r[8];
int leap_c[8];

void leaps() {
    leap_r[0] = 1;  leap_c[0] = 2;
    leap_r[1] = 1;  leap_c[1] = -2;
    leap_r[2] = -1; leap_c[2] = 2;
    leap_r[3] = -1; leap_c[3] = -2;
    leap_r[4] = 2;  leap_c[4] = 1;
    leap_r[5] = 2;  leap_c[5] = -1;
    leap_r[6] = -2; leap_c[6] = 1;
    leap_r[7] = -2; leap_c[7] = -1;
}

void wave(int origin) {
    int frontier[64];
    int incoming[64];
    int fcount;
    int icount;
    int level;
    int f;
    int k;
    int rr;
    int cc;
    int nr;
    int nc;
    int t;

    for (f = 0; f < 64; f = f + 1) { steps[origin][f] = -1; }
    steps[origin][origin] = 0;
    frontier[0] = origin;
    fcount = 1;
    level = 0;
    while (fcount > 0) {
        icount = 0;
        level = level + 1;
        for (f = 0; f < fcount; f = f + 1) {
            rr = frontier[f] / 8;
            cc = frontier[f] % 8;
            for (k = 0; k < 8; k = k + 1) {
                nr = rr + leap_r[k];
                nc = cc + leap_c[k];
                if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
                    t = nr * 8 + nc;
                    if (steps[origin][t] < 0) {
                        steps[origin][t] = level;
                        incoming[icount] = t;
                        icount = icount + 1;
                    }
                }
            }
        }
        for (f = 0; f < icount; f = f + 1) { frontier[f] = incoming[f]; }
        fcount = icount;
    }
}

int royal(int a, int b) {
    int u;
    int v;
    u = a / 8 - b / 8;
    if (u < 0) { u = 0 - u; }
    v = a % 8 - b % 8;
    if (v < 0) { v = 0 - v; }
    if (u < v) { u = v; }
    return u;
}

void main() {
    int i;
    int g;
    int m;
    int k;
    int sum;
    int ride;
    int trial;
    int best;

    leaps();
    np = read_int();
    for (i = 0; i < np; i = i + 1) {
        g = read_int();
        m = read_int();
        pos[i] = g * 8 + m;
    }
    for (i = 0; i < 64; i = i + 1) { wave(i); }

    best = 1000000;
    for (g = 0; g < 64; g = g + 1) {
        sum = 0;
        for (i = 1; i < np; i = i + 1) { sum = sum + steps[pos[i]][g]; }
        ride = royal(pos[0], g);
"#
    };
}

macro_rules! CAMELOT_TEAM4_SUFFIX {
    () => {
        r#"            for (m = 0; m < 64; m = m + 1) {
                trial = steps[pos[k]][m] + royal(pos[0], m) + steps[m][g] - steps[pos[k]][g];
                if (trial < ride) { ride = trial; }
            }
        }
        if (sum + ride < best) { best = sum + ride; }
    }
    print_int(best);
}
"#
    };
}

/// C.team4, corrected: frontier-swap BFS and an explicit carrier loop
/// starting at the first knight.
pub const C_TEAM4_CORRECT: &str = concat!(
    CAMELOT_TEAM4_PREFIX!(),
    "        for (k = 1; k < np; k = k + 1) {\n",
    CAMELOT_TEAM4_SUFFIX!()
);

/// C.team4, the real fault (paper Figure 3 shape): the carrier loop's
/// initial assignment is off by one (`k = 2` where `k = 1` is required),
/// so the first knight is never considered as the king's carrier — an
/// *assignment* defect (a single `addi` immediate at machine level).
pub const C_TEAM4_FAULTY: &str = concat!(
    CAMELOT_TEAM4_PREFIX!(),
    "        for (k = 2; k < np; k = k + 1) {\n",
    CAMELOT_TEAM4_SUFFIX!()
);

macro_rules! CAMELOT_TEAM5_BODY {
    () => {
        r#"
int reach[64][64];
int ring[64];
int where[8];
int members;
int kn_r[8];
int kn_c[8];

int walkway(int a, int b) {
    int p;
    int q;
    p = a / 8 - b / 8;
    if (p < 0) { p = -p; }
    q = a % 8 - b % 8;
    if (q < 0) { q = -q; }
    if (p > q) { return p; }
    return q;
}

void kn_init() {
    kn_r[0] = 1;  kn_c[0] = 2;
    kn_r[1] = 1;  kn_c[1] = -2;
    kn_r[2] = -1; kn_c[2] = 2;
    kn_r[3] = -1; kn_c[3] = -2;
    kn_r[4] = 2;  kn_c[4] = 1;
    kn_r[5] = 2;  kn_c[5] = -1;
    kn_r[6] = -2; kn_c[6] = 1;
    kn_r[7] = -2; kn_c[7] = -1;
}

void span(int from) {
    int head;
    int tail;
    int cur;
    int k;
    int rr;
    int cc;
    int nr;
    int nc;
    int j;
    for (j = 0; j < 64; j = j + 1) { reach[from][j] = -1; }
    reach[from][from] = 0;
    ring[0] = from;
    head = 0;
    tail = 1;
    while (head < tail) {
        cur = ring[head];
        head = head + 1;
        rr = cur / 8;
        cc = cur % 8;
        for (k = 0; k < 8; k = k + 1) {
            nr = rr + kn_r[k];
            nc = cc + kn_c[k];
            if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
                if (reach[from][nr * 8 + nc] < 0) {
                    reach[from][nr * 8 + nc] = reach[from][cur] + 1;
                    ring[tail] = nr * 8 + nc;
                    tail = tail + 1;
                }
            }
        }
    }
}

int meetway(int a, int b) {
    return dist(a / 8, a % 8, b / 8, b % 8);
}

void main() {
    int i;
    int g;
    int m;
    int k;
    int load;
    int aid;
    int e;
    int best;

    kn_init();
    members = read_int();
    for (i = 0; i < members; i = i + 1) {
        g = read_int();
        m = read_int();
        where[i] = g * 8 + m;
    }
    for (i = 0; i < 64; i = i + 1) { span(i); }

    best = 1000000;
    for (g = 0; g < 64; g = g + 1) {
        load = 0;
        for (i = 1; i < members; i = i + 1) { load = load + reach[where[i]][g]; }
        aid = walkway(where[0], g);
        for (k = 1; k < members; k = k + 1) {
            for (m = 0; m < 64; m = m + 1) {
                e = reach[where[k]][m] + meetway(where[0], m) + reach[m][g] - reach[where[k]][g];
                if (e < aid) { aid = e; }
            }
        }
        if (load + aid < best) { best = load + aid; }
    }
    print_int(best);
}
"#
    };
}

/// C.team5, corrected: clean iterative implementation whose king-distance
/// helper takes the maximum of the two axis distances (paper Figure 6's
/// corrected `max` form).
pub const C_TEAM5_CORRECT: &str = concat!(
    r#"
// C.team5 - Camelot, iterative, distance helper per Figure 6
int maxv(int a, int b) {
    if (a > b) { return a; }
    return b;
}

int dist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    return maxv((dx > 0) ? dx : -dx, (dy > 0) ? dy : -dy);
}
"#,
    CAMELOT_TEAM5_BODY!()
);

/// C.team5, the real fault (paper Figure 6, verbatim shape): the `dist`
/// helper used to evaluate meeting squares returns the *sum* of the two
/// axis distances instead of the larger one — an *algorithm* defect; the
/// correction introduces the `maxv` call and changes the generated code's
/// size. It surfaces only when the best plan needs the king to walk to a
/// meeting square away from its own position.
pub const C_TEAM5_FAULTY: &str = concat!(
    r#"
// C.team5 - Camelot, iterative, distance helper per Figure 6
int dist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    return ((dx > 0) ? dx : -dx) + ((dy > 0) ? dy : -dy);
}
"#,
    CAMELOT_TEAM5_BODY!()
);

/// C.team8: while-loop style with precomputed per-square base sums (no
/// real fault; §6 target).
pub const C_TEAM8: &str = r#"
// C.team8 - Camelot, while-loop style, precomputed base sums
int hops[64][64];
int basecost[64];
int fifo[64];
int seat[8];
int crowd;
int vr[8];
int vc[8];

void vinit() {
    vr[0] = 2;  vc[0] = 1;
    vr[1] = 2;  vc[1] = -1;
    vr[2] = -2; vc[2] = 1;
    vr[3] = -2; vc[3] = -1;
    vr[4] = 1;  vc[4] = 2;
    vr[5] = 1;  vc[5] = -2;
    vr[6] = -1; vc[6] = 2;
    vr[7] = -1; vc[7] = -2;
}

void flood(int root) {
    int take;
    int put;
    int node;
    int k;
    int a;
    int b;
    int na;
    int nb;
    int j;
    j = 0;
    while (j < 64) {
        hops[root][j] = -1;
        j = j + 1;
    }
    hops[root][root] = 0;
    fifo[0] = root;
    take = 0;
    put = 1;
    while (take < put) {
        node = fifo[take];
        take = take + 1;
        a = node / 8;
        b = node % 8;
        k = 0;
        while (k < 8) {
            na = a + vr[k];
            nb = b + vc[k];
            if (na >= 0 && na < 8 && nb >= 0 && nb < 8) {
                if (hops[root][na * 8 + nb] < 0) {
                    hops[root][na * 8 + nb] = hops[root][node] + 1;
                    fifo[put] = na * 8 + nb;
                    put = put + 1;
                }
            }
            k = k + 1;
        }
    }
}

int crown(int s, int t) {
    int p;
    int q;
    p = s / 8 - t / 8;
    if (p < 0) { p = -p; }
    q = s % 8 - t % 8;
    if (q < 0) { q = -q; }
    if (p > q) { return p; }
    return q;
}

void main() {
    int i;
    int g;
    int m;
    int k;
    int lift;
    int e;
    int result;

    vinit();
    crowd = read_int();
    i = 0;
    while (i < crowd) {
        g = read_int();
        m = read_int();
        seat[i] = g * 8 + m;
        i = i + 1;
    }

    i = 0;
    while (i < 64) {
        flood(i);
        i = i + 1;
    }

    g = 0;
    while (g < 64) {
        basecost[g] = 0;
        i = 1;
        while (i < crowd) {
            basecost[g] = basecost[g] + hops[seat[i]][g];
            i = i + 1;
        }
        g = g + 1;
    }

    result = 1000000;
    g = 0;
    while (g < 64) {
        lift = crown(seat[0], g);
        k = 1;
        while (k < crowd) {
            m = 0;
            while (m < 64) {
                e = hops[seat[k]][m] + crown(seat[0], m) + hops[m][g] - hops[seat[k]][g];
                if (e < lift) { lift = e; }
                m = m + 1;
            }
            k = k + 1;
        }
        if (basecost[g] + lift < result) { result = basecost[g] + lift; }
        g = g + 1;
    }
    print_int(result);
}
"#;

/// C.team9: heap-allocated data structures throughout — linked-list BFS
/// queue, per-source distance rows behind a pointer table (no real fault;
/// the paper's crash-prone dynamic-structure §6 target).
pub const C_TEAM9: &str = r#"
// C.team9 - Camelot, dynamic structures: linked-list queue, heap tables
struct cell {
    int square;
    struct cell *next;
};

struct cell *qfront;
struct cell *qback;
int *table[64];
int station[8];
int heads;
int gr[8];
int gc[8];

void gen_moves() {
    gr[0] = 1;  gc[0] = 2;
    gr[1] = 1;  gc[1] = -2;
    gr[2] = -1; gc[2] = 2;
    gr[3] = -1; gc[3] = -2;
    gr[4] = 2;  gc[4] = 1;
    gr[5] = 2;  gc[5] = -1;
    gr[6] = -2; gc[6] = 1;
    gr[7] = -2; gc[7] = -1;
}

void push_back(int s) {
    struct cell *node;
    node = malloc(8);
    node->square = s;
    node->next = 0;
    if (qback == 0) {
        qfront = node;
        qback = node;
    } else {
        qback->next = node;
        qback = node;
    }
}

int pop_front() {
    struct cell *node;
    int s;
    node = qfront;
    s = node->square;
    qfront = node->next;
    if (qfront == 0) { qback = 0; }
    free(node);
    return s;
}

void explore_from(int origin) {
    int *row;
    int cur;
    int k;
    int rr;
    int cc;
    int nr;
    int nc;
    int j;
    row = table[origin];
    for (j = 0; j < 64; j = j + 1) { row[j] = -1; }
    row[origin] = 0;
    qfront = 0;
    qback = 0;
    push_back(origin);
    while (qfront != 0) {
        cur = pop_front();
        rr = cur / 8;
        cc = cur % 8;
        for (k = 0; k < 8; k = k + 1) {
            nr = rr + gr[k];
            nc = cc + gc[k];
            if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
                if (row[nr * 8 + nc] < 0) {
                    row[nr * 8 + nc] = row[cur] + 1;
                    push_back(nr * 8 + nc);
                }
            }
        }
    }
}

int regal(int a, int b) {
    int h;
    int w;
    h = a / 8 - b / 8;
    if (h < 0) { h = -h; }
    w = a % 8 - b % 8;
    if (w < 0) { w = -w; }
    if (h > w) { return h; }
    return w;
}

void main() {
    int i;
    int g;
    int m;
    int k;
    int body;
    int help;
    int e;
    int champion;
    int *krow;
    int *mrow;

    gen_moves();
    heads = read_int();
    for (i = 0; i < heads; i = i + 1) {
        g = read_int();
        m = read_int();
        station[i] = g * 8 + m;
    }

    for (i = 0; i < 64; i = i + 1) {
        table[i] = malloc(256);
        explore_from(i);
    }

    champion = 1000000;
    for (g = 0; g < 64; g = g + 1) {
        body = 0;
        for (i = 1; i < heads; i = i + 1) {
            krow = table[station[i]];
            body = body + krow[g];
        }
        help = regal(station[0], g);
        for (k = 1; k < heads; k = k + 1) {
            krow = table[station[k]];
            for (m = 0; m < 64; m = m + 1) {
                mrow = table[m];
                e = krow[m] + regal(station[0], m) + mrow[g] - krow[g];
                if (e < help) { help = e; }
            }
        }
        if (body + help < champion) { champion = body + help; }
    }

    for (i = 0; i < 64; i = i + 1) { free(table[i]); }
    print_int(champion);
}
"#;

/// C.team10: a second recursive design — recursion over both the move
/// list and the gather-square search (no real fault; §6 target).
pub const C_TEAM10: &str = r#"
// C.team10 - Camelot, doubly-recursive design
int span[64][64];
int post[8];
int band;
int mr[8];
int mc[8];

void mtab() {
    mr[0] = 1;  mc[0] = 2;
    mr[1] = 1;  mc[1] = -2;
    mr[2] = -1; mc[2] = 2;
    mr[3] = -1; mc[3] = -2;
    mr[4] = 2;  mc[4] = 1;
    mr[5] = 2;  mc[5] = -1;
    mr[6] = -2; mc[6] = 1;
    mr[7] = -2; mc[7] = -1;
}

void spread(int s, int r, int c, int d) {
    if (d >= span[s][r * 8 + c]) {
        return;
    }
    span[s][r * 8 + c] = d;
    visit(s, r, c, d, 0);
}

void visit(int s, int r, int c, int d, int k) {
    int nr;
    int nc;
    if (k == 8) {
        return;
    }
    nr = r + mr[k];
    nc = c + mc[k];
    if (nr >= 0 && nr < 8 && nc >= 0 && nc < 8) {
        spread(s, nr, nc, d + 1);
    }
    visit(s, r, c, d, k + 1);
}

int throne(int a, int b) {
    int y;
    int x;
    y = a / 8 - b / 8;
    if (y < 0) { y = -y; }
    x = a % 8 - b % 8;
    if (x < 0) { x = -x; }
    if (y > x) { return y; }
    return x;
}

int score(int g) {
    int i;
    int k;
    int m;
    int tally;
    int boost;
    int e;
    tally = 0;
    for (i = 1; i < band; i = i + 1) { tally = tally + span[post[i]][g]; }
    boost = throne(post[0], g);
    for (k = 1; k < band; k = k + 1) {
        for (m = 0; m < 64; m = m + 1) {
            e = span[post[k]][m] + throne(post[0], m) + span[m][g] - span[post[k]][g];
            if (e < boost) { boost = e; }
        }
    }
    return tally + boost;
}

int hunt(int g) {
    int here;
    int there;
    if (g == 64) {
        return 1000000;
    }
    here = score(g);
    there = hunt(g + 1);
    if (here < there) { return here; }
    return there;
}

void main() {
    int i;
    int r;
    int c;
    int s;
    int g;

    mtab();
    band = read_int();
    for (i = 0; i < band; i = i + 1) {
        r = read_int();
        c = read_int();
        post[i] = r * 8 + c;
    }
    for (s = 0; s < 64; s = s + 1) {
        for (g = 0; g < 64; g = g + 1) { span[s][g] = 7; }
        spread(s, s / 8, s % 8, 0);
    }
    print_int(hunt(0));
}
"#;
