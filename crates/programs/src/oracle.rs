//! Reference implementations ("oracles") for the three program families.
//!
//! An injected run is classified *correct results* or *incorrect results*
//! by comparing its output against these independent Rust implementations
//! — the role the contest judges' test cases played in the paper.

/// Board side for Camelot.
pub const BOARD: usize = 8;

/// Chebyshev (king-move) distance between two squares.
pub fn king_dist(a: usize, b: usize) -> i32 {
    let (ar, ac) = ((a / BOARD) as i32, (a % BOARD) as i32);
    let (br, bc) = ((b / BOARD) as i32, (b % BOARD) as i32);
    (ar - br).abs().max((ac - bc).abs())
}

/// Knight-move displacement table (shared with the MiniC programs).
pub const KNIGHT_DR: [i32; 8] = [1, 1, -1, -1, 2, 2, -2, -2];
/// Knight-move displacement table, column component.
pub const KNIGHT_DC: [i32; 8] = [2, -2, 2, -2, 1, -1, 1, -1];

/// All-pairs knight distances on the 8×8 board via BFS.
pub fn knight_distances() -> Vec<Vec<i32>> {
    let n = BOARD * BOARD;
    let mut kd = vec![vec![0i32; n]; n];
    for (src, row) in kd.iter_mut().enumerate() {
        let mut dist = vec![-1i32; n];
        let mut queue = vec![src];
        dist[src] = 0;
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let (r, c) = ((cur / BOARD) as i32, (cur % BOARD) as i32);
            for k in 0..8 {
                let (nr, nc) = (r + KNIGHT_DR[k], c + KNIGHT_DC[k]);
                if (0..BOARD as i32).contains(&nr) && (0..BOARD as i32).contains(&nc) {
                    let nxt = (nr as usize) * BOARD + nc as usize;
                    if dist[nxt] < 0 {
                        dist[nxt] = dist[cur] + 1;
                        queue.push(nxt);
                    }
                }
            }
        }
        row.copy_from_slice(&dist);
    }
    kd
}

/// Solve a Camelot instance: minimum total moves to gather all pieces on
/// one square. `pieces[0]` is the king (as `(row, col)`), the rest are
/// knights. A knight may pick the king up at a meeting square and carry it
/// for free from there.
pub fn camelot_solve(pieces: &[(i32, i32)]) -> i32 {
    assert!(!pieces.is_empty(), "need at least the king");
    let idx = |(r, c): (i32, i32)| (r as usize) * BOARD + c as usize;
    let kd = knight_distances();
    let king = idx(pieces[0]);
    let knights: Vec<usize> = pieces[1..].iter().map(|&p| idx(p)).collect();
    let mut best = i32::MAX;
    for g in 0..BOARD * BOARD {
        let base: i32 = knights.iter().map(|&p| kd[p][g]).sum();
        // Option 1: the king walks to the gather square alone.
        let mut extra = king_dist(king, g);
        // Option 2: knight `p` detours via meeting square `m`, picks the
        // king up, and carries it to `g`.
        for &p in &knights {
            for m in 0..BOARD * BOARD {
                let e = kd[p][m] + king_dist(king, m) + kd[m][g] - kd[p][g];
                extra = extra.min(e);
            }
        }
        best = best.min(base + extra);
    }
    best
}

/// Maximum JamesB input line length the programs accept.
pub const JAMESB_MAX: usize = 80;

/// Encode a JamesB line: printable characters are rotated within the
/// 95-character printable range by `seed % 95` plus the character's
/// position; everything else passes through.
///
/// Returns `(coded bytes, checksum)` where the checksum is the
/// position-weighted byte sum of the *input*, mod 9973.
pub fn jamesb_encode(seed: i32, line: &[u8]) -> (Vec<u8>, i32) {
    let len = line.len().min(JAMESB_MAX);
    let s = seed % 95;
    let mut out = Vec::with_capacity(len);
    for (i, &x) in line[..len].iter().enumerate() {
        let coded = if !(32..=126).contains(&x) {
            x
        } else {
            32 + ((x as i32 - 32 + s + i as i32) % 95) as u8
        };
        out.push(coded);
    }
    let check: i32 = line[..len]
        .iter()
        .enumerate()
        .map(|(i, &c)| c as i32 * (i as i32 + 1))
        .sum::<i32>()
        % 9973;
    (out, check)
}

/// Full JamesB program output for a given input: the coded line, a
/// newline, and the checksum.
pub fn jamesb_output(seed: i32, line: &[u8]) -> Vec<u8> {
    let (coded, check) = jamesb_encode(seed, line);
    let mut out = coded;
    out.push(b'\n');
    out.extend(check.to_string().into_bytes());
    out
}

/// Maximum SOR interior grid size.
pub const SOR_MAX_N: usize = 24;

/// The SOR report: checksum, interior minimum/maximum, and L1 residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SorReport {
    /// Sum of interior cells.
    pub checksum: i32,
    /// Smallest interior cell.
    pub min: i32,
    /// Largest interior cell.
    pub max: i32,
    /// Σ |neighbour-average − cell| over the interior.
    pub residual: i32,
}

impl SorReport {
    /// The program's printed form: `checksum min max residual`.
    pub fn to_output(self) -> Vec<u8> {
        format!(
            "{} {} {} {}",
            self.checksum, self.min, self.max, self.residual
        )
        .into_bytes()
    }
}

/// Fixed-point red-black successive over-relaxation, matching the MiniC
/// SOR program's integer arithmetic exactly (ω = 1.5 realised as
/// `x + 3·(avg−x)/2` with truncating division). Inputs are clamped the
/// way the program's `clamp_input` does.
pub fn sor_solve_full(
    n: usize,
    iters: i32,
    top: i32,
    bottom: i32,
    left: i32,
    right: i32,
) -> SorReport {
    let n = n.clamp(1, SOR_MAX_N);
    let iters = iters.clamp(0, 500);
    let w = n + 2;
    let mut g = vec![vec![0i32; w]; w];
    g[0].iter_mut().for_each(|c| *c = top);
    g[n + 1].iter_mut().for_each(|c| *c = bottom);
    for row in g.iter_mut().take(n + 1).skip(1) {
        row[0] = left;
        row[n + 1] = right;
    }
    for _ in 0..iters {
        for parity in 0..2 {
            for i in 1..=n {
                for j in 1..=n {
                    if (i + j) % 2 == parity {
                        let avg = (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]) / 4;
                        g[i][j] += 3 * (avg - g[i][j]) / 2;
                    }
                }
            }
        }
    }
    let mut checksum = 0i32;
    let mut min = g[1][1];
    let mut max = g[1][1];
    let mut residual = 0i32;
    for i in 1..=n {
        for j in 1..=n {
            let v = g[i][j];
            checksum = checksum.wrapping_add(v);
            min = min.min(v);
            max = max.max(v);
            let avg = (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]) / 4;
            residual = residual.wrapping_add((avg - v).abs());
        }
    }
    SorReport {
        checksum,
        min,
        max,
        residual,
    }
}

/// Checksum-only convenience wrapper around [`sor_solve_full`].
pub fn sor_solve(n: usize, iters: i32, top: i32, bottom: i32, left: i32, right: i32) -> i32 {
    sor_solve_full(n, iters, top, bottom, left, right).checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knight_distances_symmetric_and_connected() {
        let kd = knight_distances();
        for (a, row) in kd.iter().enumerate() {
            assert_eq!(row[a], 0);
            for (b, &d) in row.iter().enumerate() {
                assert_eq!(d, kd[b][a]);
                assert!(d >= 0, "board is knight-connected");
                assert!(d <= 6, "8x8 knight diameter is 6");
            }
        }
        // Classic corner-to-adjacent anomaly: (0,0) → (1,1) takes 4 moves.
        assert_eq!(kd[0][9], 4);
    }

    #[test]
    fn king_dist_is_chebyshev() {
        assert_eq!(king_dist(0, 63), 7);
        assert_eq!(king_dist(0, 7), 7);
        assert_eq!(king_dist(0, 9), 1);
        assert_eq!(king_dist(27, 27), 0);
    }

    #[test]
    fn lone_king_costs_nothing() {
        assert_eq!(camelot_solve(&[(3, 3)]), 0);
    }

    #[test]
    fn king_and_adjacent_knight() {
        // Knight on the same square as the gather point: king gets picked
        // up at its own square when beneficial.
        // King (0,0), knight (1,2): knight can step to (0,0) in 1 move,
        // pick the king up there, total 1 move? Picking up at (0,0) and
        // gathering at (0,0): kd(knight,(0,0)) = 1, king moves 0. Total 1.
        assert_eq!(camelot_solve(&[(0, 0), (1, 2)]), 1);
    }

    #[test]
    fn pickup_beats_walking() {
        // King far in a corner, knight nearby: carrying must not cost more
        // than the king walking alone.
        let with_pickup = camelot_solve(&[(7, 7), (6, 5)]);
        let king_walk_alone = {
            // Force-walk estimate: gather at knight's square.
            king_dist(63, 6 * 8 + 5)
        };
        assert!(with_pickup <= king_walk_alone);
    }

    #[test]
    fn jamesb_seed_zero_shifts_by_position() {
        let (coded, _) = jamesb_encode(0, b"AAA");
        assert_eq!(coded, vec![b'A', b'B', b'C']);
    }

    #[test]
    fn jamesb_wraps_printable_range() {
        let (coded, _) = jamesb_encode(0, b"~~");
        // '~' = 126; +0 stays, +1 wraps to ' ' (32).
        assert_eq!(coded, vec![126, 32]);
    }

    #[test]
    fn jamesb_checksum_position_weighted() {
        let (_, check) = jamesb_encode(5, b"ab");
        assert_eq!(check, 97 + 98 * 2);
    }

    #[test]
    fn jamesb_caps_at_80() {
        let long = vec![b'x'; 200];
        let (coded, _) = jamesb_encode(1, &long);
        assert_eq!(coded.len(), 80);
    }

    #[test]
    fn sor_constant_boundary_converges_to_constant() {
        // All boundaries at the same value: interior should head toward it.
        let sum = sor_solve(4, 30, 1000, 1000, 1000, 1000);
        // 16 interior cells × 1000 when fully converged.
        assert!((sum - 16_000).abs() < 200, "sum = {sum}");
    }

    #[test]
    fn sor_zero_everything_stays_zero() {
        assert_eq!(sor_solve(6, 10, 0, 0, 0, 0), 0);
    }

    #[test]
    fn sor_is_deterministic() {
        let a = sor_solve(10, 12, 500, 100, 900, 300);
        let b = sor_solve(10, 12, 500, 100, 900, 300);
        assert_eq!(a, b);
    }
}
