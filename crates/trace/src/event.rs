//! Structured trace events in the Chrome trace-event data model.
//!
//! Every event renders to one JSON object compatible with the Trace Event
//! Format consumed by `chrome://tracing` and Perfetto: `name`, a phase
//! letter `ph` (`"X"` complete span with `dur`, `"i"` instant), a
//! microsecond timestamp `ts` relative to the campaign epoch, and
//! `pid`/`tid` lane identifiers. Campaign-specific payloads ride in
//! `args`. The exporter (see [`crate::telemetry::Telemetry`]) writes one
//! event per line so the file doubles as JSONL for line-oriented tooling.

use serde::Value;

/// The process id used for every lane: the whole campaign is one process.
pub const TRACE_PID: u64 = 1;

/// One Chrome trace event.
///
/// Construct through [`TraceEvent::complete`] / [`TraceEvent::instant`];
/// render with [`TraceEvent::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`run`, `fork_hit`, `phase:assign`, ...).
    pub name: String,
    /// Chrome phase letter: `'X'` complete span, `'i'` instant.
    pub ph: char,
    /// Microseconds since the campaign epoch.
    pub ts: u64,
    /// Span duration in microseconds (only rendered for `'X'` events).
    pub dur: u64,
    /// Lane: worker index as allocated by the telemetry hub, 0 = engine.
    pub tid: u64,
    /// Event payload, rendered as the Chrome `args` object.
    pub args: Vec<(String, Value)>,
}

impl TraceEvent {
    /// A completed span (`ph = "X"`): `[ts, ts + dur]` on lane `tid`.
    pub fn complete(
        name: impl Into<String>,
        ts: u64,
        dur: u64,
        tid: u64,
        args: Vec<(String, Value)>,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            ph: 'X',
            ts,
            dur,
            tid,
            args,
        }
    }

    /// A zero-duration instant (`ph = "i"`, thread scope) on lane `tid`.
    pub fn instant(
        name: impl Into<String>,
        ts: u64,
        tid: u64,
        args: Vec<(String, Value)>,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            ph: 'i',
            ts,
            dur: 0,
            tid,
            args,
        }
    }

    /// Render as one Chrome trace-event JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut obj = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("ph".to_string(), Value::Str(self.ph.to_string())),
            ("ts".to_string(), Value::U64(self.ts)),
            ("pid".to_string(), Value::U64(TRACE_PID)),
            ("tid".to_string(), Value::U64(self.tid)),
        ];
        if self.ph == 'X' {
            obj.push(("dur".to_string(), Value::U64(self.dur)));
        }
        if self.ph == 'i' {
            // Chrome requires a scope for instants; "t" pins the tick to
            // its thread lane instead of a process-wide line.
            obj.push(("s".to_string(), Value::Str("t".to_string())));
        }
        if !self.args.is_empty() {
            obj.push(("args".to_string(), Value::Object(self.args.clone())));
        }
        serde_json::to_string(&Value::Object(obj)).expect("trace events always serialize")
    }

    /// Parse an event back out of its [`TraceEvent::to_json`] object (the
    /// shard→hub direction: merging per-shard trace files into one
    /// campaign view).
    ///
    /// # Errors
    ///
    /// Reports the first missing or malformed field.
    pub fn from_value(v: &Value) -> Result<TraceEvent, String> {
        let obj = v.as_object().ok_or("trace event is not an object")?;
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let name = match get("name") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("trace event missing string `name`".to_string()),
        };
        let ph = match get("ph") {
            Some(Value::Str(s)) if s.len() == 1 => s.chars().next().unwrap(),
            _ => return Err(format!("trace event `{name}` missing 1-char `ph`")),
        };
        let uint = |k: &str| match get(k) {
            Some(Value::U64(u)) => Ok(*u),
            Some(Value::I64(i)) if *i >= 0 => Ok(*i as u64),
            None => Err(format!("trace event `{name}` missing `{k}`")),
            _ => Err(format!("trace event `{name}` has non-integer `{k}`")),
        };
        let ts = uint("ts")?;
        let tid = uint("tid")?;
        let dur = if ph == 'X' { uint("dur")? } else { 0 };
        let args = match get("args") {
            Some(Value::Object(fields)) => fields.clone(),
            Some(_) => return Err(format!("trace event `{name}` has non-object `args`")),
            None => Vec::new(),
        };
        Ok(TraceEvent {
            name,
            ph,
            ts,
            dur,
            tid,
            args,
        })
    }
}

/// Convenience for building `args` payloads: an unsigned numeric field.
pub fn arg_u64(name: &str, v: u64) -> (String, Value) {
    (name.to_string(), Value::U64(v))
}

/// Convenience for building `args` payloads: a string field.
pub fn arg_str(name: &str, v: impl Into<String>) -> (String, Value) {
    (name.to_string(), Value::Str(v.into()))
}

/// The event names the tracing layer emits, in one place so the schema
/// validator (`swifi trace-validate`) and the emitters cannot drift.
pub const EVENT_NAMES: &[&str] = &[
    // Spans.
    "campaign",
    "phase",
    "run",
    // Injection lifecycle instants.
    "fault_arm",
    "trigger_fire",
    "watchdog_hang",
    // Prefix-fork cache instants.
    "fork_hit",
    "fork_miss",
    "fork_veto",
    "dormant_short_circuit",
    "golden_hit",
    // Trace-guided pruning instants.
    "trace_run",
    "prune_dormant",
    "collapse_hit",
    "prune_mispredict",
    // Block-translation instants.
    "block_translate",
    "block_invalidate",
    // Engine instants.
    "checkpoint_flush",
    "worker_panic",
    "worker_retire",
    "metrics_merge_error",
    // Service-boundary instants (shard lifecycle on the server).
    "shard_spawn",
    "shard_done",
    "shard_merge",
];

/// Whether `name` is a known schema event. Phase spans embed the phase
/// name for readable Perfetto labels (`phase:assign`), so any
/// `phase:`-prefixed name is part of the schema.
pub fn known_event(name: &str) -> bool {
    EVENT_NAMES.contains(&name) || name.starts_with("phase:")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_renders_chrome_fields() {
        let e = TraceEvent::complete("run", 12, 34, 3, vec![arg_u64("retired", 99)]);
        let json = e.to_json();
        let v: Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object().unwrap();
        let get = |k: &str| obj.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(get("name"), Some(Value::Str("run".into())));
        assert_eq!(get("ph"), Some(Value::Str("X".into())));
        assert_eq!(get("ts"), Some(Value::U64(12)));
        assert_eq!(get("dur"), Some(Value::U64(34)));
        assert_eq!(get("pid"), Some(Value::U64(TRACE_PID)));
        assert_eq!(get("tid"), Some(Value::U64(3)));
        let args = get("args").unwrap();
        let args = args.as_object().unwrap();
        assert_eq!(args[0], ("retired".to_string(), Value::U64(99)));
    }

    #[test]
    fn instant_event_has_thread_scope_and_no_dur() {
        let e = TraceEvent::instant("fork_hit", 5, 1, vec![]);
        let json = e.to_json();
        assert!(json.contains("\"s\":\"t\""), "{json}");
        assert!(!json.contains("dur"), "{json}");
    }

    #[test]
    fn schema_covers_all_emitted_names() {
        assert!(known_event("run"));
        assert!(known_event("watchdog_hang"));
        assert!(known_event("metrics_merge_error"));
        assert!(known_event("shard_merge"));
        assert!(!known_event("made_up"));
    }

    #[test]
    fn events_round_trip_through_json() {
        let span = TraceEvent::complete("run", 12, 34, 3, vec![arg_u64("retired", 99)]);
        let instant = TraceEvent::instant("fork_hit", 5, 1, vec![arg_str("why", "x")]);
        for e in [span, instant] {
            let v: Value = serde_json::from_str(&e.to_json()).unwrap();
            assert_eq!(TraceEvent::from_value(&v).unwrap(), e);
        }
    }

    #[test]
    fn from_value_rejects_malformed_events() {
        let bad: Value = serde_json::from_str(r#"{"ph":"i","ts":1,"tid":0}"#).unwrap();
        assert!(TraceEvent::from_value(&bad).unwrap_err().contains("name"));
        let bad: Value = serde_json::from_str(r#"{"name":"run","ph":"X","ts":1,"tid":0}"#).unwrap();
        assert!(TraceEvent::from_value(&bad).unwrap_err().contains("dur"));
    }
}
