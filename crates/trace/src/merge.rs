//! Merging trace views across process boundaries.
//!
//! A sharded campaign produces one Chrome trace file per shard worker
//! process, each with its own lane numbering (engine = 0, workers = 1..)
//! and its own epoch. The server folds them into a single campaign view:
//! parse each file back into [`TraceEvent`]s, remap every shard's lanes
//! into a disjoint block so Perfetto shows one row per (shard, worker),
//! and render through the one sorting renderer shared with the in-process
//! exporter.
//!
//! Timestamps stay relative to each shard's own epoch — shards start
//! within milliseconds of each other and the merged view is read for
//! shape (phase spans, run density, retire markers), not for cross-shard
//! ordering guarantees. The renderer's timestamp sort keeps the merged
//! file monotonic, which [`crate::validate::validate_chrome_trace`]
//! enforces.

use serde::Value;

use crate::event::TraceEvent;

/// Render events as a Chrome trace-event JSON array, one event per line,
/// sorted by `(ts, tid)`.
///
/// This is the single sorting point for every export path — the hub's
/// event order is not monotonic (retiring workers drain buffered events
/// after later-timestamped events from surviving workers), and neither is
/// a concatenation of shard traces.
pub fn render_events(mut events: Vec<TraceEvent>) -> String {
    events.sort_by_key(|e| (e.ts, e.tid));
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(&e.to_json());
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Parse an exported Chrome trace (strict JSON array of event objects)
/// back into events.
///
/// # Errors
///
/// Reports JSON parse failures and the first malformed event.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let whole: Value =
        serde_json::from_str(text).map_err(|e| format!("trace is not valid JSON: {}", e.0))?;
    let arr = whole
        .as_array()
        .ok_or("top-level trace value is not an array")?;
    arr.iter()
        .enumerate()
        .map(|(i, v)| TraceEvent::from_value(v).map_err(|e| format!("event {i}: {e}")))
        .collect()
}

/// Merge per-shard event lists into one campaign-wide list.
///
/// Lane remapping keeps shards visually and logically separate: with
/// `stride = max tid over all shards + 1`, shard `k`'s lane `t` becomes
/// `k * stride + t`, so shard 0 keeps its numbering and every other
/// shard's engine/worker lanes land in their own disjoint block.
pub fn merge_shard_events(shards: &[Vec<TraceEvent>]) -> Vec<TraceEvent> {
    let stride = shards
        .iter()
        .flatten()
        .map(|e| e.tid)
        .max()
        .map_or(1, |m| m + 1);
    let mut merged = Vec::with_capacity(shards.iter().map(Vec::len).sum());
    for (k, events) in shards.iter().enumerate() {
        for e in events {
            let mut e = e.clone();
            e.tid += k as u64 * stride;
            merged.push(e);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::arg_u64;
    use crate::validate::validate_chrome_trace;

    fn shard_events(base_ts: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::complete("phase:assign", base_ts, 50, 0, vec![]),
            TraceEvent::complete("run", base_ts + 5, 10, 1, vec![arg_u64("retired", 9)]),
            TraceEvent::instant("worker_retire", base_ts + 40, 1, vec![]),
        ]
    }

    #[test]
    fn render_parses_back_to_the_same_events_sorted() {
        let mut events = shard_events(0);
        events.reverse(); // deliberately unsorted input
        let text = render_events(events.clone());
        let back = parse_chrome_trace(&text).unwrap();
        events.sort_by_key(|e| (e.ts, e.tid));
        assert_eq!(back, events);
    }

    #[test]
    fn merged_shards_get_disjoint_lanes_and_validate() {
        let shards = vec![shard_events(0), shard_events(3), shard_events(7)];
        let merged = merge_shard_events(&shards);
        assert_eq!(merged.len(), 9);
        // Max tid in any shard is 1, so the stride is 2: shard k's lanes
        // are {2k, 2k+1} and never collide across shards.
        let mut lanes: Vec<u64> = merged.iter().map(|e| e.tid).collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes, vec![0, 1, 2, 3, 4, 5]);
        let text = render_events(merged);
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.runs, 3);
        assert_eq!(summary.phases, 3);
        assert_eq!(summary.lanes, 6);
    }

    #[test]
    fn parse_rejects_malformed_traces() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{}").is_err());
        let err = parse_chrome_trace("[{\"ph\":\"i\",\"ts\":1,\"tid\":0}]").unwrap_err();
        assert!(err.contains("event 0"), "{err}");
    }
}
