//! Schema validation for exported traces (`swifi trace-validate`,
//! `scripts/trace_smoke.sh`).
//!
//! The exporter writes a strictly valid Chrome trace-event JSON array
//! with one event per line; the validator checks both readings — the
//! whole file parses as a JSON array, and each line parses on its own
//! (after stripping the array brackets and separators) — plus the event
//! schema: required Chrome fields, known event names, and the structural
//! expectations a campaign trace must meet.

use serde::Value;

use crate::event::known_event;

/// What a validated trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in the file.
    pub events: usize,
    /// Completed spans (`ph == "X"`).
    pub spans: usize,
    /// Instants (`ph == "i"`).
    pub instants: usize,
    /// `run` spans.
    pub runs: usize,
    /// `phase:*` spans.
    pub phases: usize,
    /// Distinct lanes (`tid`s) seen.
    pub lanes: usize,
}

fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn num(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) => u64::try_from(*n).ok(),
        _ => None,
    }
}

/// Validate one event object against the schema.
fn validate_event(v: &Value, line_no: usize, summary: &mut TraceSummary) -> Result<u64, String> {
    let obj = v
        .as_object()
        .ok_or_else(|| format!("line {line_no}: event is not a JSON object"))?;
    let name = field(obj, "name")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string `name`"))?;
    if !known_event(name) {
        return Err(format!("line {line_no}: unknown event name `{name}`"));
    }
    let ph = field(obj, "ph")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing string `ph`"))?;
    field(obj, "ts")
        .and_then(num)
        .ok_or_else(|| format!("line {line_no}: missing numeric `ts`"))?;
    field(obj, "pid")
        .and_then(num)
        .ok_or_else(|| format!("line {line_no}: missing numeric `pid`"))?;
    let tid = field(obj, "tid")
        .and_then(num)
        .ok_or_else(|| format!("line {line_no}: missing numeric `tid`"))?;
    match ph {
        "X" => {
            field(obj, "dur")
                .and_then(num)
                .ok_or_else(|| format!("line {line_no}: `X` event without numeric `dur`"))?;
            summary.spans += 1;
            if name == "run" {
                summary.runs += 1;
            }
            if name.starts_with("phase:") {
                summary.phases += 1;
            }
        }
        "i" => {
            field(obj, "s")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {line_no}: instant without scope `s`"))?;
            summary.instants += 1;
        }
        other => return Err(format!("line {line_no}: unsupported phase `{other}`")),
    }
    summary.events += 1;
    Ok(tid)
}

/// Validate an exported trace file's contents.
///
/// # Errors
///
/// Returns a message naming the first offending line when the file is
/// not a well-formed Chrome trace-event array, an event violates the
/// schema, or the trace lacks the structure every campaign trace has
/// (at least one `phase:*` span and one `run` span).
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    // Reading 1: the whole file is strict JSON.
    let whole: Value =
        serde_json::from_str(text).map_err(|e| format!("file is not valid JSON: {}", e.0))?;
    if whole.as_array().is_none() {
        return Err("top-level JSON value is not an array".to_string());
    }

    // Reading 2: line-oriented — brackets on their own lines, each event
    // parseable in isolation (what makes the file consumable as JSONL).
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty trace file")?;
    if first.trim() != "[" {
        return Err(format!("first line must be `[`, got `{first}`"));
    }
    let mut summary = TraceSummary::default();
    let mut lanes = std::collections::BTreeSet::new();
    let mut closed = false;
    let mut prev_ts: Option<u64> = None;
    for (i, line) in lines {
        let line_no = i + 1;
        let trimmed = line.trim();
        if closed {
            return Err(format!("line {line_no}: content after closing `]`"));
        }
        if trimmed == "]" {
            closed = true;
            continue;
        }
        let event_src = trimmed.strip_suffix(',').unwrap_or(trimmed);
        let v: Value = serde_json::from_str(event_src)
            .map_err(|e| format!("line {line_no}: not a JSON object: {}", e.0))?;
        lanes.insert(validate_event(&v, line_no, &mut summary)?);
        // The exporter sorts by timestamp before rendering (late-drained
        // worker-retire buffers land out of hub order); reject files that
        // regress to unsorted output.
        let ts = field(v.as_object().unwrap(), "ts").and_then(num).unwrap();
        if let Some(prev) = prev_ts {
            if ts < prev {
                return Err(format!(
                    "line {line_no}: timestamp {ts} is out of order (previous event at {prev})"
                ));
            }
        }
        prev_ts = Some(ts);
    }
    if !closed {
        return Err("missing closing `]`".to_string());
    }
    summary.lanes = lanes.len();
    if summary.events == 0 {
        return Err("trace contains no events".to_string());
    }
    if summary.phases == 0 {
        return Err("trace contains no `phase:*` span".to_string());
    }
    if summary.runs == 0 {
        return Err("trace contains no `run` span".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{arg_u64, TraceEvent};
    use crate::telemetry::{Telemetry, TelemetryConfig, ENGINE_TID};

    fn traced_hub() -> std::sync::Arc<Telemetry> {
        Telemetry::shared(TelemetryConfig {
            trace: true,
            ..TelemetryConfig::default()
        })
    }

    fn minimal_trace() -> String {
        let hub = traced_hub();
        hub.engine_event(TraceEvent::complete(
            "phase:assign",
            0,
            100,
            ENGINE_TID,
            vec![],
        ));
        {
            let mut w = hub.worker();
            w.complete("run", 10, vec![arg_u64("retired", 42)]);
            w.instant("fork_hit", vec![]);
        }
        hub.render_chrome_trace()
    }

    #[test]
    fn exporter_output_validates() {
        let text = minimal_trace();
        let summary = validate_chrome_trace(&text).unwrap();
        assert!(summary.events >= 3);
        assert_eq!(summary.phases, 1);
        assert_eq!(summary.runs, 1);
        assert!(summary.lanes >= 2, "engine lane + worker lane");
    }

    #[test]
    fn rejects_unknown_event_names() {
        let text =
            "[\n{\"name\":\"bogus\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0,\"s\":\"t\"}\n]\n";
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("unknown event name"), "{err}");
    }

    #[test]
    fn rejects_span_without_dur() {
        let text = "[\n{\"name\":\"run\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":0}\n]\n";
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn rejects_traces_without_campaign_structure() {
        // Valid events, but no phase span.
        let text = "[\n{\"name\":\"run\",\"ph\":\"X\",\"ts\":1,\"dur\":1,\"pid\":1,\"tid\":0}\n]\n";
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("phase"), "{err}");
    }

    #[test]
    fn rejects_non_json() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }

    #[test]
    fn rejects_out_of_order_timestamps() {
        let text = concat!(
            "[\n",
            "{\"name\":\"phase:assign\",\"ph\":\"X\",\"ts\":50,\"dur\":1,\"pid\":1,\"tid\":0},\n",
            "{\"name\":\"run\",\"ph\":\"X\",\"ts\":10,\"dur\":1,\"pid\":1,\"tid\":1}\n",
            "]\n"
        );
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    #[test]
    fn late_drained_worker_events_export_sorted_and_validate() {
        // Worker A buffers early events but drains last (retires after B
        // has already flushed later-timestamped events) — the exporter
        // must still produce a monotonic file.
        let hub = traced_hub();
        hub.engine_event(TraceEvent::complete(
            "phase:assign",
            0,
            100,
            ENGINE_TID,
            vec![],
        ));
        let mut a = hub.worker();
        let mut b = hub.worker();
        a.complete("run", 0, vec![]); // early event, held in A's buffer
        b.complete("run", 0, vec![]);
        drop(b); // B's retire marker lands in the hub first...
        std::thread::sleep(std::time::Duration::from_millis(2));
        a.instant("fork_hit", vec![]); // ...then A records a later event
        drop(a); // and drains everything after B.
        let text = hub.render_chrome_trace();
        validate_chrome_trace(&text).unwrap();
    }
}
