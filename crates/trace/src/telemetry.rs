//! The telemetry hub: one shared [`Telemetry`] per campaign, one
//! [`WorkerTelemetry`] per worker thread.
//!
//! Ownership is arranged so the run path never takes a lock: workers
//! append events to a private buffer and accumulate metrics/profile
//! samples in private structures, and everything drains into the shared
//! hub either when a buffer fills or when the worker retires (its
//! [`WorkerTelemetry`] drops — including the retire-on-panic path, where
//! the engine keeps worker state alive precisely so counters survive).
//! The hub's locks are touched once per flush, not once per event.
//!
//! When a pillar is disabled its record calls reduce to a flag test; the
//! campaign session additionally guards its instrumentation behind one
//! `Option` check per *run*, which is what keeps the disabled-telemetry
//! overhead under the 1% budget (`BENCH_trace_overhead.json`).

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::Value;

use crate::event::{arg_str, TraceEvent};
use crate::metrics::{register_run_histograms, MetricsRegistry};
use crate::profile::{PcHistogram, DEFAULT_SAMPLE_EVERY};

/// Which telemetry pillars are live for a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Collect structured trace events (`--trace-out`).
    pub trace: bool,
    /// Accumulate the metrics registry (`--metrics-out`).
    pub metrics: bool,
    /// Sample guest PCs (`--profile` / `--profile-out`).
    pub profile: bool,
    /// Slow-path sampling period for the profiler.
    pub profile_every: u32,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            trace: false,
            metrics: false,
            profile: false,
            profile_every: DEFAULT_SAMPLE_EVERY,
        }
    }
}

impl TelemetryConfig {
    /// Whether any pillar is enabled (a fully-disabled config is
    /// represented as *no* telemetry object at all in the campaign
    /// options, so the run path pays a single `Option` test).
    pub fn any(&self) -> bool {
        self.trace || self.metrics || self.profile
    }
}

/// Worker buffers flush to the hub when they reach this many events.
const FLUSH_AT: usize = 4096;

/// The engine/driver lane in exported traces; workers get 1, 2, ...
pub const ENGINE_TID: u64 = 0;

/// The shared, campaign-wide telemetry hub.
#[derive(Debug)]
pub struct Telemetry {
    config: TelemetryConfig,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    metrics: Mutex<MetricsRegistry>,
    merge_errors: Mutex<Vec<String>>,
    profile: Mutex<PcHistogram>,
    next_tid: AtomicU64,
}

impl Telemetry {
    /// A hub with the given pillars enabled, epoch = now.
    pub fn new(config: TelemetryConfig) -> Telemetry {
        let mut metrics = MetricsRegistry::new();
        if config.metrics {
            register_run_histograms(&mut metrics);
        }
        Telemetry {
            config,
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            metrics: Mutex::new(metrics),
            merge_errors: Mutex::new(Vec::new()),
            profile: Mutex::new(PcHistogram::new()),
            next_tid: AtomicU64::new(ENGINE_TID + 1),
        }
    }

    /// Shorthand for `Arc::new(Telemetry::new(config))`.
    pub fn shared(config: TelemetryConfig) -> Arc<Telemetry> {
        Arc::new(Telemetry::new(config))
    }

    /// The active configuration.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Microseconds since the hub was created (the trace epoch).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Open a per-worker accumulator on its own trace lane.
    pub fn worker(self: &Arc<Self>) -> WorkerTelemetry {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let mut metrics = MetricsRegistry::new();
        if self.config.metrics {
            register_run_histograms(&mut metrics);
        }
        WorkerTelemetry {
            shared: Arc::clone(self),
            tid,
            buf: Vec::new(),
            metrics,
            profile: PcHistogram::new(),
        }
    }

    /// Emit one event on the engine lane (phase spans, checkpoint
    /// flushes, worker panics). No-op when tracing is off.
    pub fn engine_event(&self, event: TraceEvent) {
        if self.config.trace {
            self.events.lock().unwrap().push(event);
        }
    }

    /// Instant on the engine lane at the current time.
    pub fn engine_instant(&self, name: &str, args: Vec<(String, Value)>) {
        if self.config.trace {
            let e = TraceEvent::instant(name, self.now_us(), ENGINE_TID, args);
            self.events.lock().unwrap().push(e);
        }
    }

    /// Bulk-append a worker's drained buffer.
    fn absorb_events(&self, mut events: Vec<TraceEvent>) {
        if self.config.trace && !events.is_empty() {
            self.events.lock().unwrap().append(&mut events);
        }
    }

    /// Mutate the shared metrics registry (used by the exporter to set
    /// campaign-level gauges before snapshotting).
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.metrics.lock().unwrap())
    }

    /// Merge an external registry (a retiring worker's accumulator, or a
    /// shard process's reported snapshot) into the hub. A bucket-bound
    /// mismatch is recorded as a merge error and a `metrics_merge_error`
    /// trace instant instead of aborting the campaign; the mismatched
    /// registry's histograms are dropped, its counters/gauges land.
    pub fn absorb_metrics(&self, other: &MetricsRegistry) {
        let result = self.metrics.lock().unwrap().merge(other);
        if let Err(msg) = result {
            self.engine_instant("metrics_merge_error", vec![arg_str("error", &msg)]);
            self.merge_errors.lock().unwrap().push(msg);
        }
    }

    /// Drain the metrics-merge errors recorded so far (the campaign layer
    /// surfaces these as abnormal records).
    pub fn take_merge_errors(&self) -> Vec<String> {
        std::mem::take(&mut self.merge_errors.lock().unwrap())
    }

    /// Snapshot the merged metrics registry as pretty JSON.
    pub fn metrics_json(&self) -> String {
        self.metrics.lock().unwrap().to_json()
    }

    /// Snapshot the merged PC histogram.
    pub fn profile_snapshot(&self) -> PcHistogram {
        self.profile.lock().unwrap().clone()
    }

    /// Number of events collected so far (drained worker buffers only).
    pub fn event_count(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Render every collected event as a Chrome trace-event JSON array,
    /// one event per line (strictly valid JSON *and* line-parseable),
    /// sorted by timestamp so the file streams in Perfetto order.
    ///
    /// Hub order is *not* monotonic — a retiring worker's buffered events
    /// drain after later-timestamped events from surviving workers — so
    /// every export path funnels through [`crate::merge::render_events`],
    /// the single place that sorts.
    pub fn render_chrome_trace(&self) -> String {
        let events = self.events.lock().unwrap().clone();
        crate::merge::render_events(events)
    }

    /// Write the Chrome trace to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error message.
    pub fn write_chrome_trace(&self, path: &Path) -> Result<(), String> {
        let mut f = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        f.write_all(self.render_chrome_trace().as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// A worker thread's private telemetry accumulator.
///
/// All record methods are lock-free; everything drains to the shared hub
/// on buffer overflow and on drop (worker retirement).
#[derive(Debug)]
pub struct WorkerTelemetry {
    shared: Arc<Telemetry>,
    tid: u64,
    buf: Vec<TraceEvent>,
    metrics: MetricsRegistry,
    profile: PcHistogram,
}

impl WorkerTelemetry {
    /// This worker's trace lane.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Microseconds since the campaign epoch.
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// Whether trace events are being collected.
    pub fn trace_enabled(&self) -> bool {
        self.shared.config.trace
    }

    /// Whether the metrics registry is live.
    pub fn metrics_enabled(&self) -> bool {
        self.shared.config.metrics
    }

    /// Whether guest-PC sampling is on.
    pub fn profile_enabled(&self) -> bool {
        self.shared.config.profile
    }

    /// The sampling histogram and slow-path period, for wiring a
    /// [`crate::profile::ProfiledInspector`] around an inner inspector.
    pub fn profiler(&mut self) -> (&mut PcHistogram, u32) {
        (&mut self.profile, self.shared.config.profile_every)
    }

    /// Buffer an instant event on this worker's lane.
    pub fn instant(&mut self, name: &str, args: Vec<(String, Value)>) {
        if self.shared.config.trace {
            let e = TraceEvent::instant(name, self.shared.now_us(), self.tid, args);
            self.push(e);
        }
    }

    /// Buffer a completed span that started at `start_us` and ends now.
    pub fn complete(&mut self, name: &str, start_us: u64, args: Vec<(String, Value)>) {
        if self.shared.config.trace {
            let now = self.shared.now_us();
            let e =
                TraceEvent::complete(name, start_us, now.saturating_sub(start_us), self.tid, args);
            self.push(e);
        }
    }

    fn push(&mut self, e: TraceEvent) {
        self.buf.push(e);
        if self.buf.len() >= FLUSH_AT {
            self.shared.absorb_events(std::mem::take(&mut self.buf));
        }
    }

    /// Add to a named counter (no-op when metrics are off).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if self.shared.config.metrics {
            self.metrics.counter_add(name, delta);
        }
    }

    /// Observe into a named histogram (no-op when metrics are off).
    pub fn observe(&mut self, name: &str, v: f64) {
        if self.shared.config.metrics {
            self.metrics.observe(name, v);
        }
    }
}

impl Drop for WorkerTelemetry {
    fn drop(&mut self) {
        if self.shared.config.trace {
            let e = TraceEvent::instant(
                "worker_retire",
                self.shared.now_us(),
                self.tid,
                vec![arg_str("reason", "drop")],
            );
            self.buf.push(e);
        }
        self.shared.absorb_events(std::mem::take(&mut self.buf));
        if self.shared.config.metrics {
            let mine = std::mem::take(&mut self.metrics);
            self.shared.absorb_metrics(&mine);
        }
        if self.shared.config.profile && self.profile.total() > 0 {
            let hist = std::mem::take(&mut self.profile);
            self.shared.profile.lock().unwrap().merge(&hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::arg_u64;
    use crate::metrics::{names, Histogram};

    fn all_on() -> TelemetryConfig {
        TelemetryConfig {
            trace: true,
            metrics: true,
            profile: true,
            profile_every: 8,
        }
    }

    #[test]
    fn worker_events_drain_on_drop() {
        let hub = Telemetry::shared(all_on());
        {
            let mut w = hub.worker();
            w.instant("fork_hit", vec![arg_u64("pc", 0x1000)]);
            w.complete("run", w.now_us(), vec![]);
            assert_eq!(hub.event_count(), 0, "buffered, not yet drained");
        }
        // Two buffered events plus the worker_retire marker.
        assert_eq!(hub.event_count(), 3);
    }

    #[test]
    fn worker_metrics_and_profile_merge_on_drop() {
        let hub = Telemetry::shared(all_on());
        {
            let mut w = hub.worker();
            w.counter_add("runs", 2);
            w.observe(names::RUN_LATENCY_US, 5.0);
            let (hist, every) = w.profiler();
            assert_eq!(every, 8);
            hist.record(0x1000, 4);
        }
        assert_eq!(hub.with_metrics(|m| m.counter("runs")), 2);
        assert_eq!(
            hub.with_metrics(|m| m.histogram(names::RUN_LATENCY_US).unwrap().count()),
            1
        );
        assert_eq!(hub.profile_snapshot().total(), 4);
    }

    #[test]
    fn disabled_pillars_record_nothing() {
        let hub = Telemetry::shared(TelemetryConfig::default());
        {
            let mut w = hub.worker();
            w.instant("fork_hit", vec![]);
            w.counter_add("runs", 1);
            w.observe(names::RUN_LATENCY_US, 1.0);
        }
        assert_eq!(hub.event_count(), 0);
        assert_eq!(hub.with_metrics(|m| m.counter("runs")), 0);
        assert_eq!(hub.profile_snapshot().total(), 0);
    }

    #[test]
    fn workers_get_distinct_lanes() {
        let hub = Telemetry::shared(all_on());
        let a = hub.worker();
        let b = hub.worker();
        assert_ne!(a.tid(), b.tid());
        assert_ne!(a.tid(), ENGINE_TID);
    }

    #[test]
    fn chrome_render_is_valid_json_sorted_by_ts() {
        let hub = Telemetry::shared(all_on());
        hub.engine_event(TraceEvent::instant(
            "checkpoint_flush",
            50,
            ENGINE_TID,
            vec![],
        ));
        hub.engine_event(TraceEvent::complete(
            "phase:assign",
            10,
            90,
            ENGINE_TID,
            vec![],
        ));
        let text = hub.render_chrome_trace();
        let v: Value = serde_json::from_str(&text).expect("strict JSON");
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        // Sorted: the ts=10 span precedes the ts=50 instant.
        let first = arr[0].as_object().unwrap();
        let name = first.iter().find(|(k, _)| k == "name").unwrap().1.clone();
        assert_eq!(name, Value::Str("phase:assign".into()));
        // One event per line between the brackets.
        assert_eq!(text.lines().count(), 2 + arr.len());
    }

    #[test]
    fn mismatched_registry_becomes_merge_error_not_panic() {
        let hub = Telemetry::shared(all_on());
        let mut bad = MetricsRegistry::new();
        bad.counter_add("runs", 1);
        bad.register_histogram(names::RUN_LATENCY_US, Histogram::new(vec![123.0]));
        hub.absorb_metrics(&bad);

        let errs = hub.take_merge_errors();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains(names::RUN_LATENCY_US), "{}", errs[0]);
        // Counters landed before the histogram mismatch; the error store
        // drains exactly once; the engine lane got a trace instant.
        assert_eq!(hub.with_metrics(|m| m.counter("runs")), 1);
        assert!(hub.take_merge_errors().is_empty());
        assert!(hub.render_chrome_trace().contains("metrics_merge_error"));
    }

    #[test]
    fn big_buffers_flush_before_drop() {
        let hub = Telemetry::shared(all_on());
        let mut w = hub.worker();
        for _ in 0..FLUSH_AT {
            w.instant("fork_hit", vec![]);
        }
        assert_eq!(hub.event_count(), FLUSH_AT, "cap flush happened");
        drop(w);
        assert_eq!(hub.event_count(), FLUSH_AT + 1, "retire marker");
    }
}
