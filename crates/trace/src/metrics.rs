//! A small metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Workers accumulate into private registries (no shared-state writes on
//! the run path) which the telemetry hub merges on worker retirement; the
//! merged registry snapshots into the campaign report and the
//! `--metrics-out` JSON. Buckets are fixed at registration so registries
//! from different workers merge bucket-by-bucket.

use std::collections::BTreeMap;

use serde::Value;

/// A fixed-bucket histogram with sum/count/min/max summary statistics.
///
/// `bounds` are inclusive upper bounds; an implicit overflow bucket
/// catches everything above the last bound, so `counts.len() ==
/// bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over the given inclusive upper bounds
    /// (ascending). An overflow bucket is appended automatically.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Exponential bucket bounds: `start, start*factor, ...` (`n` bounds).
    pub fn exponential(start: f64, factor: f64, n: usize) -> Histogram {
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram in.
    ///
    /// # Errors
    ///
    /// Merging only makes sense between registries built from the same
    /// registration; mismatched bucket bounds are reported (not panicked)
    /// so a campaign can surface the bad shard as an abnormal record
    /// instead of dying.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "bucket bounds mismatch ({} vs {} bounds)",
                self.bounds.len(),
                other.bounds.len()
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    /// Snapshot as a JSON value: bounds, counts, count, sum, mean,
    /// min/max (null when empty).
    pub fn to_value(&self) -> Value {
        let num = |v: f64| {
            if self.count == 0 {
                Value::Null
            } else {
                Value::F64(v)
            }
        };
        Value::Object(vec![
            (
                "bounds".to_string(),
                Value::Array(self.bounds.iter().map(|&b| Value::F64(b)).collect()),
            ),
            (
                "counts".to_string(),
                Value::Array(self.counts.iter().map(|&c| Value::U64(c)).collect()),
            ),
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::F64(self.sum)),
            ("mean".to_string(), Value::F64(self.mean())),
            ("min".to_string(), num(self.min)),
            ("max".to_string(), num(self.max)),
        ])
    }

    /// Parse a histogram back out of its [`Histogram::to_value`] snapshot
    /// (the shard→hub direction of the metrics wire format).
    ///
    /// # Errors
    ///
    /// Reports the first malformed field.
    pub fn from_value(v: &Value) -> Result<Histogram, String> {
        let obj = v.as_object().ok_or("histogram snapshot is not an object")?;
        let field = |name: &str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("histogram snapshot missing `{name}`"))
        };
        let bounds = field("bounds")?
            .as_array()
            .ok_or("histogram `bounds` is not an array")?
            .iter()
            .map(|b| num_f64(b).ok_or_else(|| "non-numeric histogram bound".to_string()))
            .collect::<Result<Vec<f64>, String>>()?;
        let counts = field("counts")?
            .as_array()
            .ok_or("histogram `counts` is not an array")?
            .iter()
            .map(|c| num_u64(c).ok_or_else(|| "non-integer histogram count".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram has {} counts for {} bounds (want bounds+1)",
                counts.len(),
                bounds.len()
            ));
        }
        let count = num_u64(field("count")?).ok_or("histogram `count` is not an integer")?;
        let sum = num_f64(field("sum")?).ok_or("histogram `sum` is not a number")?;
        // min/max render as Null when the histogram is empty.
        let min = num_f64(field("min")?).unwrap_or(f64::INFINITY);
        let max = num_f64(field("max")?).unwrap_or(f64::NEG_INFINITY);
        Ok(Histogram {
            bounds,
            counts,
            count,
            sum,
            min,
            max,
        })
    }
}

fn num_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(f) => Some(*f),
        Value::I64(i) => Some(*i as f64),
        Value::U64(u) => Some(*u as f64),
        _ => None,
    }
}

fn num_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(u) => Some(*u),
        Value::I64(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a counter (created at 0 on first touch).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current counter value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Register a histogram under `name` (no-op when already present, so
    /// workers can register idempotently).
    pub fn register_histogram(&mut self, name: &str, hist: Histogram) {
        self.histograms.entry(name.to_string()).or_insert(hist);
    }

    /// Record an observation into a registered histogram; observations to
    /// unregistered names are dropped (the disabled-telemetry contract
    /// never reaches here, this guards partial registration).
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        }
    }

    /// A registered histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Fold another registry in: counters add, gauges overwrite (last
    /// writer wins — campaign-level gauges are set once at snapshot
    /// time), histograms merge bucket-wise (registered on demand).
    ///
    /// # Errors
    ///
    /// A histogram bucket-bound mismatch reports the offending metric by
    /// name. Counters and gauges merged before the mismatch stay merged;
    /// the caller is expected to surface the error and drop `other`.
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<(), String> {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine
                    .merge(h)
                    .map_err(|e| format!("cannot merge histogram `{k}`: {e}"))?,
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// Snapshot the whole registry as a JSON value.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".to_string(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Snapshot as pretty-printed JSON (the `--metrics-out` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("metrics always serialize")
    }

    /// Parse a registry back out of its [`MetricsRegistry::to_value`]
    /// snapshot. This is how shard worker processes report their
    /// registries to the server for the campaign-wide merge.
    ///
    /// # Errors
    ///
    /// Reports the first malformed section or histogram by name.
    pub fn from_value(v: &Value) -> Result<MetricsRegistry, String> {
        let obj = v.as_object().ok_or("metrics snapshot is not an object")?;
        let section = |name: &str| -> Result<&Vec<(String, Value)>, String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("metrics snapshot missing `{name}`"))?
                .as_object()
                .ok_or_else(|| format!("metrics `{name}` is not an object"))
        };
        let mut reg = MetricsRegistry::new();
        for (k, v) in section("counters")? {
            let n = num_u64(v).ok_or_else(|| format!("counter `{k}` is not an integer"))?;
            reg.counters.insert(k.clone(), n);
        }
        for (k, v) in section("gauges")? {
            let n = num_f64(v).ok_or_else(|| format!("gauge `{k}` is not a number"))?;
            reg.gauges.insert(k.clone(), n);
        }
        for (k, v) in section("histograms")? {
            let h = Histogram::from_value(v).map_err(|e| format!("histogram `{k}`: {e}"))?;
            reg.histograms.insert(k.clone(), h);
        }
        Ok(reg)
    }

    /// Parse a registry from [`MetricsRegistry::to_json`] text.
    ///
    /// # Errors
    ///
    /// Reports JSON parse failures and malformed snapshots.
    pub fn from_json(text: &str) -> Result<MetricsRegistry, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("metrics JSON parse error: {e:?}"))?;
        MetricsRegistry::from_value(&v)
    }
}

/// Histogram names the campaign layer records (kept in one place so the
/// session, the exporter, and the tests agree).
pub mod names {
    /// Wall-clock latency of one classified run, in microseconds.
    pub const RUN_LATENCY_US: &str = "run_latency_us";
    /// Retired guest instructions per run (as a full run would report).
    pub const RETIRED_INSTRS_PER_RUN: &str = "retired_instrs_per_run";
    /// Prefix-fork cache hit rate over injected runs (campaign gauge).
    pub const PREFIX_HIT_RATE: &str = "prefix_hit_rate";
    /// Block-cache hit rate over block dispatches (campaign gauge).
    pub const BLOCK_CACHE_HIT_RATE: &str = "block_cache_hit_rate";
}

/// The standard per-run histograms, registered by every worker.
pub fn register_run_histograms(reg: &mut MetricsRegistry) {
    // 1µs .. ~1s in half-decade steps.
    reg.register_histogram(names::RUN_LATENCY_US, Histogram::exponential(1.0, 4.0, 10));
    // 1 .. ~1e9 retired instructions.
    reg.register_histogram(
        names::RETIRED_INSTRS_PER_RUN,
        Histogram::exponential(1.0, 8.0, 10),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_summary() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 7.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 562.5).abs() < 1e-9);
        assert!((h.mean() - 112.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::new(vec![1.0, 2.0]);
        let mut b = Histogram::new(vec![1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_merge_rejects_different_bounds() {
        let mut a = Histogram::new(vec![1.0]);
        let b = Histogram::new(vec![2.0, 3.0]);
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("bucket bounds mismatch"), "{err}");
        // The failed merge left the receiver untouched.
        assert_eq!(a, Histogram::new(vec![1.0]));
    }

    #[test]
    fn registry_merge_names_offending_histogram() {
        let mut a = MetricsRegistry::new();
        a.register_histogram("lat", Histogram::new(vec![1.0]));
        let mut b = MetricsRegistry::new();
        b.register_histogram("lat", Histogram::new(vec![2.0]));
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("`lat`"), "{err}");
    }

    #[test]
    fn registry_counters_gauges_and_merge() {
        let mut a = MetricsRegistry::new();
        a.counter_add("runs", 2);
        a.gauge_set("rate", 0.5);
        register_run_histograms(&mut a);
        a.observe(names::RUN_LATENCY_US, 3.0);

        let mut b = MetricsRegistry::new();
        b.counter_add("runs", 3);
        register_run_histograms(&mut b);
        b.observe(names::RUN_LATENCY_US, 7.0);

        a.merge(&b).unwrap();
        assert_eq!(a.counter("runs"), 5);
        assert_eq!(a.histogram(names::RUN_LATENCY_US).unwrap().count(), 2);

        // Snapshot parses back as JSON.
        let v: serde::Value = serde_json::from_str(&a.to_json()).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.iter().any(|(k, _)| k == "histograms"));
    }

    #[test]
    fn registry_json_round_trips() {
        let mut a = MetricsRegistry::new();
        a.counter_add("runs", 7);
        a.gauge_set("rate", 0.25);
        register_run_histograms(&mut a);
        a.observe(names::RUN_LATENCY_US, 3.0);
        a.observe(names::RUN_LATENCY_US, 900.0);

        let back = MetricsRegistry::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);

        // Empty histograms (Null min/max) round-trip too.
        let empty = MetricsRegistry::from_json(&MetricsRegistry::new().to_json()).unwrap();
        assert_eq!(empty, MetricsRegistry::new());
    }

    #[test]
    fn registry_from_json_rejects_malformed_snapshots() {
        assert!(MetricsRegistry::from_json("not json").is_err());
        assert!(MetricsRegistry::from_json("{}").is_err());
        let err = MetricsRegistry::from_json(
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[1.0],"counts":[0],"count":0,"sum":0.0,"mean":0.0,"min":null,"max":null}}}"#,
        )
        .unwrap_err();
        assert!(err.contains("`h`"), "{err}");
    }

    #[test]
    fn empty_histogram_snapshot_has_null_extrema() {
        let h = Histogram::new(vec![1.0]);
        let v = h.to_value();
        let obj = v.as_object().unwrap();
        let min = obj.iter().find(|(k, _)| k == "min").unwrap().1.clone();
        assert_eq!(min, Value::Null);
    }

    #[test]
    fn observations_to_unregistered_histograms_are_dropped() {
        let mut r = MetricsRegistry::new();
        r.observe("nope", 1.0);
        assert!(r.histogram("nope").is_none());
    }
}
