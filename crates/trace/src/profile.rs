//! Sampling guest hot-PC profiler.
//!
//! The block interpreter retires most instructions in translated-block
//! batches; [`ProfiledInspector`] turns each batch retirement into one
//! weighted sample (the whole block attributed to its first PC) and
//! samples every N-th slow-path retirement, so profiling cost stays
//! proportional to dispatches rather than instructions. Samples land in a
//! [`PcHistogram`]; attribution to guest functions happens offline
//! against address ranges extracted from `swifi-lang` debug info (passed
//! in as plain [`FuncRange`]s so this crate stays independent of the
//! compiler).

use std::collections::HashMap;

use swifi_vm::inspect::{FetchPolicy, Inspector};

/// Weighted histogram of sampled guest PCs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcHistogram {
    samples: HashMap<u32, u64>,
    total: u64,
}

impl PcHistogram {
    /// An empty histogram.
    pub fn new() -> PcHistogram {
        PcHistogram::default()
    }

    /// Record `weight` samples at `pc`.
    #[inline]
    pub fn record(&mut self, pc: u32, weight: u64) {
        *self.samples.entry(pc).or_insert(0) += weight;
        self.total += weight;
    }

    /// Total sample weight recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct sampled PCs.
    pub fn distinct_pcs(&self) -> usize {
        self.samples.len()
    }

    /// Fold another histogram in.
    pub fn merge(&mut self, other: &PcHistogram) {
        for (&pc, &w) in &other.samples {
            *self.samples.entry(pc).or_insert(0) += w;
        }
        self.total += other.total;
    }

    /// Iterate over `(pc, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.samples.iter().map(|(&pc, &w)| (pc, w))
    }
}

/// A guest function's address range, `[start, end]` inclusive —
/// the shape of `swifi-lang`'s `FunctionInfo` without the dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncRange {
    /// Function name as it should appear in profiles.
    pub name: String,
    /// First code address of the function.
    pub start: u32,
    /// Last code address of the function (inclusive).
    pub end: u32,
}

impl FuncRange {
    /// Whether `addr` falls inside this function.
    pub fn contains(&self, addr: u32) -> bool {
        self.start <= addr && addr <= self.end
    }
}

/// One row of an attributed profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSamples {
    /// Function name, or `"<unknown>"` for PCs outside every range.
    pub name: String,
    /// Total sample weight attributed to the function.
    pub samples: u64,
    /// Share of the histogram's total weight, in percent.
    pub pct: f64,
    /// The single hottest sampled PC inside the function.
    pub hottest_pc: u32,
}

/// Attribute a PC histogram to guest functions, hottest first.
///
/// Ties are broken by name so the rendering is deterministic across runs
/// and `HashMap` iteration orders.
pub fn attribute(hist: &PcHistogram, funcs: &[FuncRange]) -> Vec<FuncSamples> {
    #[derive(Default)]
    struct Acc {
        samples: u64,
        hottest_pc: u32,
        hottest_weight: u64,
    }
    let mut by_func: HashMap<usize, Acc> = HashMap::new();
    let mut unknown = Acc::default();
    for (pc, w) in hist.iter() {
        let acc = match funcs.iter().position(|f| f.contains(pc)) {
            Some(i) => by_func.entry(i).or_default(),
            None => &mut unknown,
        };
        acc.samples += w;
        if w > acc.hottest_weight || (w == acc.hottest_weight && pc < acc.hottest_pc) {
            acc.hottest_weight = w;
            acc.hottest_pc = pc;
        }
    }
    let total = hist.total().max(1) as f64;
    let mut rows: Vec<FuncSamples> = by_func
        .into_iter()
        .map(|(i, acc)| FuncSamples {
            name: funcs[i].name.clone(),
            samples: acc.samples,
            pct: acc.samples as f64 * 100.0 / total,
            hottest_pc: acc.hottest_pc,
        })
        .collect();
    if unknown.samples > 0 {
        rows.push(FuncSamples {
            name: "<unknown>".to_string(),
            samples: unknown.samples,
            pct: unknown.samples as f64 * 100.0 / total,
            hottest_pc: unknown.hottest_pc,
        });
    }
    rows.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.name.cmp(&b.name)));
    rows
}

/// Render the top-`n` rows as a fixed-width table (the `--profile`
/// printout).
pub fn top_table(rows: &[FuncSamples], n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>12} {:>7}  {:>10}\n",
        "function", "samples", "%", "hottest pc"
    ));
    for row in rows.iter().take(n) {
        out.push_str(&format!(
            "{:<24} {:>12} {:>6.1}%  {:>#10x}\n",
            row.name, row.samples, row.pct, row.hottest_pc
        ));
    }
    out
}

/// Render the profile as collapsed stacks (`program;function weight`,
/// one frame deep — the guest has no sampled call stacks), the input
/// format of `flamegraph.pl` and speedscope.
pub fn collapsed_stacks(program: &str, rows: &[FuncSamples]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!("{program};{} {}\n", row.name, row.samples));
    }
    out
}

/// An [`Inspector`] adapter that forwards every hook to `inner`
/// unchanged while sampling retirements into a [`PcHistogram`].
///
/// Forwarding keeps injection behaviour bit-identical: the machine sees
/// the same fetch policy, the same hook effects, and the same
/// block-quiescence answers, so a profiled campaign classifies exactly
/// like an unprofiled one (pinned by the campaign equality tests).
pub struct ProfiledInspector<'a, I: Inspector> {
    inner: &'a mut I,
    hist: &'a mut PcHistogram,
    every: u32,
    countdown: u32,
}

impl<'a, I: Inspector> ProfiledInspector<'a, I> {
    /// Wrap `inner`, sampling every `every`-th slow-path retirement (and
    /// every block retirement, weighted by block length) into `hist`.
    pub fn new(
        inner: &'a mut I,
        hist: &'a mut PcHistogram,
        every: u32,
    ) -> ProfiledInspector<'a, I> {
        let every = every.max(1);
        ProfiledInspector {
            inner,
            hist,
            every,
            countdown: every,
        }
    }
}

impl<I: Inspector> Inspector for ProfiledInspector<'_, I> {
    fn fetch_policy(&self) -> FetchPolicy {
        self.inner.fetch_policy()
    }

    #[inline]
    fn on_fetch(&mut self, core: usize, pc: u32, word: &mut u32) {
        self.inner.on_fetch(core, pc, word);
    }

    #[inline]
    fn on_load_addr(&mut self, core: usize, pc: u32, addr: &mut u32) {
        self.inner.on_load_addr(core, pc, addr);
    }

    #[inline]
    fn on_load_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        self.inner.on_load_value(core, pc, addr, value);
    }

    #[inline]
    fn on_store_addr(&mut self, core: usize, pc: u32, addr: &mut u32) {
        self.inner.on_store_addr(core, pc, addr);
    }

    #[inline]
    fn on_store_value(&mut self, core: usize, pc: u32, addr: u32, value: &mut u32) {
        self.inner.on_store_value(core, pc, addr, value);
    }

    #[inline]
    fn on_reg_write(&mut self, core: usize, pc: u32, reg: u8, value: &mut u32) {
        self.inner.on_reg_write(core, pc, reg, value);
    }

    #[inline]
    fn on_retire(&mut self, core: usize, pc: u32) {
        self.inner.on_retire(core, pc);
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.every;
            self.hist.record(pc, self.every as u64);
        }
    }

    #[inline]
    fn block_quiescent(&self, core: usize, first_pc: u32, last_pc: u32) -> bool {
        self.inner.block_quiescent(core, first_pc, last_pc)
    }

    #[inline]
    fn on_block_retire(&mut self, core: usize, first_pc: u32, n: u32) {
        self.inner.on_block_retire(core, first_pc, n);
        self.hist.record(first_pc, n as u64);
    }
}

/// Default slow-path sampling period: cheap enough to leave on for whole
/// campaigns, dense enough that short JamesB runs still collect samples.
pub const DEFAULT_SAMPLE_EVERY: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use swifi_vm::Noop;

    fn funcs() -> Vec<FuncRange> {
        vec![
            FuncRange {
                name: "main".to_string(),
                start: 0x1000,
                end: 0x10fc,
            },
            FuncRange {
                name: "helper".to_string(),
                start: 0x1100,
                end: 0x11fc,
            },
        ]
    }

    #[test]
    fn attribution_sorts_hottest_first_and_buckets_unknown() {
        let mut h = PcHistogram::new();
        h.record(0x1004, 10);
        h.record(0x1104, 90);
        h.record(0x9000, 5);
        let rows = attribute(&h, &funcs());
        assert_eq!(rows[0].name, "helper");
        assert_eq!(rows[0].samples, 90);
        assert_eq!(rows[0].hottest_pc, 0x1104);
        assert_eq!(rows[1].name, "main");
        assert_eq!(rows[2].name, "<unknown>");
        let pct: f64 = rows.iter().map(|r| r.pct).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn renderings_contain_every_row() {
        let mut h = PcHistogram::new();
        h.record(0x1004, 3);
        h.record(0x1104, 7);
        let rows = attribute(&h, &funcs());
        let table = top_table(&rows, 10);
        assert!(table.contains("helper"), "{table}");
        assert!(table.contains("main"), "{table}");
        let stacks = collapsed_stacks("JB.team11", &rows);
        assert_eq!(stacks, "JB.team11;helper 7\nJB.team11;main 3\n");
    }

    #[test]
    fn top_table_truncates_to_n() {
        let mut h = PcHistogram::new();
        h.record(0x1004, 3);
        h.record(0x1104, 7);
        let rows = attribute(&h, &funcs());
        let table = top_table(&rows, 1);
        assert!(table.contains("helper"));
        assert!(!table.contains("main"));
    }

    #[test]
    fn profiled_inspector_samples_blocks_and_slow_path() {
        let mut h = PcHistogram::new();
        let mut noop = Noop;
        let mut p = ProfiledInspector::new(&mut noop, &mut h, 2);
        // A 5-instruction quiescent block: one weighted sample.
        assert!(p.block_quiescent(0, 0x1000, 0x1010));
        p.on_block_retire(0, 0x1000, 5);
        // Four slow-path retirements at period 2: two samples of weight 2.
        for i in 0..4u32 {
            p.on_retire(0, 0x2000 + i * 4);
        }
        assert_eq!(h.total(), 5 + 4);
        assert_eq!(h.distinct_pcs(), 3);
    }

    #[test]
    fn histogram_merge_adds_weights() {
        let mut a = PcHistogram::new();
        let mut b = PcHistogram::new();
        a.record(0x10, 1);
        b.record(0x10, 2);
        b.record(0x20, 3);
        a.merge(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.distinct_pcs(), 2);
    }
}
