//! Campaign observability for the SWIFI reproduction: three pillars, all
//! compiled down to a no-op when disabled.
//!
//! 1. **Structured event tracing** ([`event`], [`telemetry`]) — spans for
//!    campaign → phase → run and instants for the injection lifecycle
//!    (fault arm, trigger fire, watchdog hang), the prefix-fork cache
//!    (hit / miss / veto / dormant short-circuit), block translation,
//!    and the engine (checkpoint flush, worker panic/retire). Events
//!    buffer per worker — no locks on the run path — and export as a
//!    Chrome trace-event JSON array, one event per line, loadable
//!    directly in `chrome://tracing` and Perfetto.
//! 2. **A metrics registry** ([`metrics`]) — counters, gauges, and
//!    fixed-bucket histograms (run latency, retired instructions per
//!    run) merged across workers and snapshotted to `--metrics-out`.
//! 3. **A guest hot-PC profiler** ([`profile`]) — weighted sampling on
//!    block retirement plus every-N slow-path sampling, attributed to
//!    guest functions via debug-info address ranges and rendered as a
//!    top-N table or collapsed stacks for flamegraph tooling.
//!
//! The disabled case is the design constraint (ZOFI's near-zero-probe
//! bar): a campaign without telemetry carries `None` instead of a hub,
//! so the per-run cost is one pointer test — measured by
//! `BENCH_trace_overhead.json` at under 1% of instruction throughput.
//! Telemetry never feeds report equality: the resume and sharding
//! oracles compare through `Throughput::equality_key` exactly as before.

pub mod event;
pub mod merge;
pub mod metrics;
pub mod profile;
pub mod telemetry;
pub mod validate;

pub use event::{arg_str, arg_u64, TraceEvent};
pub use merge::{merge_shard_events, parse_chrome_trace, render_events};
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{
    attribute, collapsed_stacks, top_table, FuncRange, FuncSamples, PcHistogram, ProfiledInspector,
};
pub use telemetry::{Telemetry, TelemetryConfig, WorkerTelemetry, ENGINE_TID};
pub use validate::{validate_chrome_trace, TraceSummary};
