//! Section 6.1 of the paper: steering fault injection with software
//! metrics when no field data exists. Computes the metrics for every
//! target program and shows how a 20-fault budget would be allocated
//! under each strategy.
//!
//! ```text
//! cargo run --release -p swifi-campaign --example metrics_guided
//! ```

use swifi_campaign::report::render_table;
use swifi_lang::parser::parse;
use swifi_metrics::{allocate, measure, AllocationStrategy};

fn main() {
    // Per-program metric summary (Table 2 enriched).
    let mut rows = Vec::new();
    for p in swifi_programs::all_programs() {
        let ast = parse(p.source_correct).expect("vendored source parses");
        let m = measure(p.source_correct, &ast);
        let cyclo = m.total_cyclomatic();
        let vol: f64 = m.functions.iter().map(|f| f.halstead.volume()).sum();
        rows.push(vec![
            p.name.to_string(),
            m.loc.to_string(),
            m.functions.len().to_string(),
            cyclo.to_string(),
            format!("{vol:.0}"),
            if m.any_recursive() { "yes" } else { "no" }.to_string(),
            if m.uses_dynamic_structures() {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Program",
                "LoC",
                "Functions",
                "Cyclomatic",
                "Halstead vol.",
                "Recursive",
                "Dynamic"
            ],
            &rows
        )
    );

    // Allocation comparison on the largest program.
    let sor = swifi_programs::program("SOR").expect("exists");
    let ast = parse(sor.source_correct).expect("parses");
    let metrics = measure(sor.source_correct, &ast);
    println!("allocating a 20-fault budget over SOR's functions:\n");
    let mut alloc_rows = Vec::new();
    let uniform = allocate(&metrics, &AllocationStrategy::Uniform, 20);
    let guided = allocate(&metrics, &AllocationStrategy::MetricsGuided, 20);
    for ((name, u), (_, g)) in uniform.iter().zip(&guided) {
        let f = metrics
            .functions
            .iter()
            .find(|f| &f.name == name)
            .expect("same order");
        alloc_rows.push(vec![
            name.clone(),
            f.cyclomatic.to_string(),
            format!("{:.1}", f.proneness()),
            u.to_string(),
            g.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Function",
                "Cyclomatic",
                "Proneness",
                "Uniform",
                "Metrics-guided"
            ],
            &alloc_rows
        )
    );
    println!("the metrics-guided strategy concentrates injections in complex functions,");
    println!("mirroring how the paper's field data concentrated faults in fault-prone modules");
}
