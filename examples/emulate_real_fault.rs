//! The paper's Section 5 in miniature: take three real software faults —
//! one of each emulability class — and show what a SWIFI tool can and
//! cannot do with them.
//!
//! ```text
//! cargo run --release -p swifi-campaign --example emulate_real_fault
//! ```

use swifi_core::emulate::{emulation_faults, plan_emulation, EmulationStrategy, EmulationVerdict};
use swifi_core::injector::{Injector, TriggerMode};
use swifi_lang::compile;
use swifi_programs::{program, Family};
use swifi_vm::asm::disassemble;
use swifi_vm::machine::Machine;
use swifi_vm::Noop;

fn main() {
    // Class A: C.team4's assignment fault (Figure 3 shape) — a single
    // instruction word differs, one hardware breakpoint suffices.
    demo("C.team4");
    // Class B: JB.team6's stack-shift fault (Figure 4) — same code length
    // but many shifted displacements; exceeds the two breakpoint registers.
    demo("JB.team6");
    // Class C: C.team5's algorithm fault (Figure 6) — the correction
    // changes the instruction count; no SWIFI tool can emulate it.
    demo("C.team5");
}

fn demo(name: &str) {
    let p = program(name).expect("known program");
    let fault = p.real_fault.expect("has a real fault");
    println!("== {name}: {} fault ==", fault.defect_type);
    println!("   {}", fault.description);
    let corrected = compile(p.source_correct).expect("compiles");
    let faulty = compile(p.source_faulty.expect("has faulty source")).expect("compiles");
    match plan_emulation(&corrected.image, &faulty.image) {
        EmulationVerdict::Identical => println!("   binaries identical?!"),
        EmulationVerdict::Emulable { diffs } => {
            println!(
                "   class A: {} differing word(s) — emulable in hardware mode",
                diffs.len()
            );
            for d in &diffs {
                let dis = |w: u32| {
                    swifi_vm::decode(w)
                        .map(|i| i.to_string())
                        .unwrap_or_else(|_| format!(".word {w:#010x}"))
                };
                println!(
                    "     {:#010x}: `{}` -> `{}`",
                    d.addr,
                    dis(d.corrected),
                    dis(d.faulty)
                );
            }
            // Verify the emulation end-to-end on one input.
            let inputs = p.family.test_case(1, 99);
            let specs = emulation_faults(&diffs, EmulationStrategy::FetchCorruption);
            let mut inj = Injector::new(specs, TriggerMode::Hardware, 0).expect("budget ok");
            let mut m = Machine::new(config(p.family));
            m.load(&corrected.image);
            m.set_input(inputs[0].to_tape());
            inj.prepare(&mut m).expect("prepare");
            let emulated = m.run(&mut inj);
            let mut m2 = Machine::new(config(p.family));
            m2.load(&faulty.image);
            m2.set_input(inputs[0].to_tape());
            let real = m2.run(&mut Noop);
            println!(
                "     emulated output == real faulty output: {}",
                emulated.output() == real.output()
            );
        }
        EmulationVerdict::BreakpointBudgetExceeded {
            diffs,
            required_triggers,
        } => {
            println!(
                "   class B: {} differing words need {required_triggers} triggers, \
                 but the PowerPC 601 has only 2 breakpoint registers",
                diffs.len()
            );
            println!("     (emulable only with intrusive trap instrumentation)");
            let sample: Vec<String> = diffs
                .iter()
                .take(3)
                .map(|d| format!("{:#010x}", d.addr))
                .collect();
            println!("     first shifted references at: {}", sample.join(", "));
        }
        EmulationVerdict::NotEmulable {
            corrected_len,
            faulty_len,
        } => {
            println!(
                "   class C: correction changes the code structure \
                 ({faulty_len} -> {corrected_len} instructions); beyond any SWIFI tool"
            );
            println!(
                "     corrected tail: {:?}",
                disassemble(&corrected.image)
                    .last()
                    .map(String::as_str)
                    .unwrap_or("")
            );
        }
    }
    println!();
}

fn config(family: Family) -> swifi_vm::MachineConfig {
    swifi_vm::MachineConfig {
        num_cores: family.cores(),
        budget: family.run_budget(),
        ..swifi_vm::MachineConfig::default()
    }
}
