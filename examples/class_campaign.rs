//! Run a class-based fault-injection campaign (the paper's Section 6) on
//! one target program and print its failure-mode profile.
//!
//! ```text
//! cargo run --release -p swifi-campaign --example class_campaign [program] [inputs]
//! ```
//!
//! Defaults to `C.team9` (the crash-prone dynamic-structures target) with
//! 10 inputs per fault.

use swifi_campaign::report::{mode_cells, render_table, MODE_HEADERS};
use swifi_campaign::section6::{class_campaign, CampaignScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("C.team9");
    let inputs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);

    let target = swifi_programs::program(name).unwrap_or_else(|| {
        eprintln!("unknown program `{name}`; known programs:");
        for p in swifi_programs::all_programs() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    });

    println!("campaign on {name} ({inputs} inputs per fault)...");
    let result = class_campaign(
        &target,
        CampaignScale {
            inputs_per_fault: inputs,
        },
        2024,
    );

    println!(
        "\nlocations: {} of {} assignment, {} of {} checking",
        result.plan.chosen_assign.len(),
        result.plan.possible_assign,
        result.plan.chosen_check.len(),
        result.plan.possible_check,
    );
    println!(
        "generated faults: {} assignment, {} checking; total runs: {}",
        result.assign_fault_count, result.check_fault_count, result.total_runs
    );

    let mut headers = vec!["Fault class"];
    headers.extend(MODE_HEADERS);
    let mut rows = Vec::new();
    let mut assign_row = vec!["assignment".to_string()];
    assign_row.extend(mode_cells(&result.assign_modes));
    rows.push(assign_row);
    let mut check_row = vec!["checking".to_string()];
    check_row.extend(mode_cells(&result.check_modes));
    rows.push(check_row);
    println!("\n{}", render_table(&headers, &rows));

    let mut type_rows = Vec::new();
    for (t, counts) in &result.by_assign_type {
        let mut row = vec![t.label().to_string()];
        row.extend(mode_cells(counts));
        type_rows.push(row);
    }
    for (t, counts) in &result.by_check_type {
        let mut row = vec![t.label().to_string()];
        row.extend(mode_cells(counts));
        type_rows.push(row);
    }
    let mut type_headers = vec!["Error type"];
    type_headers.extend(MODE_HEADERS);
    println!("{}", render_table(&type_headers, &type_rows));

    println!(
        "dormant (never-fired) runs: {}/{}",
        result.dormant_runs, result.total_runs
    );
}
