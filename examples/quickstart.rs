//! Quickstart: compile a MiniC program, enumerate its fault locations,
//! inject one checking error, and observe the failure mode.
//!
//! ```text
//! cargo run --release -p swifi-campaign --example quickstart
//! ```

use swifi_campaign::{execute, FailureMode};
use swifi_core::injector::{Injector, TriggerMode};
use swifi_core::locations::generate_error_set;
use swifi_lang::compile;
use swifi_programs::{Family, TestInput};
use swifi_vm::machine::{Machine, MachineConfig};
use swifi_vm::Noop;

fn main() {
    // 1. Compile a small program with the MiniC compiler.
    let program = compile(
        "void main() {
           int i;
           int sum;
           sum = 0;
           for (i = 1; i <= 10; i = i + 1) {
             sum = sum + i;
           }
           print_int(sum);
         }",
    )
    .expect("compiles");

    // 2. Fault-free run on the P601-lite VM.
    let mut machine = Machine::new(MachineConfig::default());
    machine.load(&program.image);
    let clean = machine.run(&mut Noop);
    println!(
        "clean run output: {}",
        String::from_utf8_lossy(clean.output())
    );

    // 3. The compiler's debug info is the fault-location catalogue.
    println!(
        "fault locations: {} assignment site(s), {} checking site(s)",
        program.debug.assigns.len(),
        program.debug.checks.len()
    );

    // 4. Generate every applicable Table-3 error type for the sites
    //    (the paper's Section 6.3 procedure) and inject one.
    let set = generate_error_set(&program.debug, 4, 1, 42);
    let fault = set
        .check_faults
        .iter()
        .find(|f| f.error.label() == "<= <")
        .expect("the loop condition offers a `<= <` error");
    println!(
        "injecting `{}` at line {} (branch at {:#x})",
        fault.error.label(),
        fault.line,
        fault.site_addr
    );
    let mut injector =
        Injector::new(vec![fault.spec], TriggerMode::Hardware, 7).expect("within budget");
    let mut machine = Machine::new(MachineConfig::default());
    machine.load(&program.image);
    injector.prepare(&mut machine).expect("prepare");
    let faulted = machine.run(&mut injector);
    println!(
        "injected run output: {} (fault fired: {})",
        String::from_utf8_lossy(faulted.output()),
        injector.any_fired()
    );

    // 5. Or let the campaign runner classify outcomes against an oracle.
    let target = swifi_programs::program("JB.team11").expect("exists");
    let compiled = compile(target.source_correct).expect("compiles");
    let input = TestInput::JamesB {
        seed: 9,
        line: b"hello swifi".to_vec(),
    };
    let (mode, _) = execute(
        &compiled,
        Family::JamesB,
        &input,
        Some(&fault_spec_for(&compiled)),
        1,
    );
    println!("JB.team11 under a `no assign` error: {:?}", mode);
    assert!(FailureMode::ALL.contains(&mode));
}

fn fault_spec_for(compiled: &swifi_lang::Program) -> swifi_core::fault::FaultSpec {
    let set = generate_error_set(&compiled.debug, 3, 0, 5);
    set.assign_faults
        .iter()
        .find(|f| f.error.label() == "no assign")
        .expect("assignment sites exist")
        .spec
}
